package kp

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/poly"
	"repro/internal/structured"
)

func TestSylvesterOperatorMatchesDense(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(191)
	for trial := 0; trial < 20; trial++ {
		a := randomPoly(src, 1+src.Intn(8))
		b := randomPoly(src, 1+src.Intn(8))
		op := structured.NewSylvester[uint64](f, a, b)
		dense := Sylvester[uint64](f, a, b)
		r, c := op.Dims()
		if r != dense.Rows || c != dense.Cols {
			t.Fatalf("dims (%d,%d) vs dense %dx%d", r, c, dense.Rows, dense.Cols)
		}
		x := ff.SampleVec[uint64](f, src, c, ff.P31)
		if !ff.VecEqual[uint64](f, op.Apply(f, x), dense.MulVec(f, x)) {
			t.Fatal("structured Sylvester apply disagrees with dense")
		}
		// The operator's own Dense view agrees entry-wise too.
		rows := op.Dense(f)
		for i := 0; i < r; i++ {
			if !ff.VecEqual[uint64](f, rows[i], dense.Row(i)) {
				t.Fatalf("Dense row %d mismatch", i)
			}
		}
	}
}

func TestResultantWiedemann(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(193)
	for trial := 0; trial < 15; trial++ {
		a := randomPoly(src, 1+src.Intn(6))
		b := randomPoly(src, 1+src.Intn(6))
		got, err := ResultantWiedemann[uint64](f, a, b, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ResultantSylvester[uint64](f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Wiedemann resultant %d != dense det %d", got, want)
		}
	}
	// Common factor ⇒ zero resultant via the singular path.
	g := poly.FromInt64[uint64](f, []int64{-7, 1})
	a := poly.Mul[uint64](f, g, randomPoly(src, 3))
	b := poly.Mul[uint64](f, g, randomPoly(src, 4))
	got, err := ResultantWiedemann[uint64](f, a, b, Params{Src: src, Subset: ff.P31, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZero(got) {
		t.Fatal("resultant with common factor must vanish")
	}
}

func TestGCDKnownDegree(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(195)
	for trial := 0; trial < 30; trial++ {
		dg := 1 + src.Intn(4)
		g, err := poly.Monic[uint64](f, randomPoly(src, dg))
		if err != nil {
			t.Fatal(err)
		}
		// Coprime cofactors with high probability; gcd may exceed dg in
		// unlucky draws, so compare against the Euclid reference instead
		// of the planted g.
		a := poly.Mul[uint64](f, g, randomPoly(src, 1+src.Intn(5)))
		b := poly.Mul[uint64](f, g, randomPoly(src, 1+src.Intn(5)))
		want, err := poly.GCD[uint64](f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		d := poly.Deg[uint64](f, want)
		got, err := GCDKnownDegree[uint64](f, a, b, d)
		if err != nil {
			t.Fatal(err)
		}
		if !poly.Equal[uint64](f, got, want) {
			t.Fatalf("GCDKnownDegree(%d) = %s, want %s", d,
				poly.String[uint64](f, got), poly.String[uint64](f, want))
		}
		// A wrong degree promise must be detected, not silently accepted.
		if d+1 <= min(poly.Deg[uint64](f, a), poly.Deg[uint64](f, b)) {
			if _, err := GCDKnownDegree[uint64](f, a, b, d+1); err == nil {
				t.Fatal("over-promised gcd degree accepted")
			}
		}
	}
	// Coprime pair at degree 0.
	a := poly.FromInt64[uint64](f, []int64{1, 1})
	b := poly.FromInt64[uint64](f, []int64{2, 0, 1})
	got, err := GCDKnownDegree[uint64](f, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Deg[uint64](f, got) != 0 {
		t.Fatal("coprime known-degree gcd not constant")
	}
	// deg = min(m, n) when one divides the other.
	h := poly.FromInt64[uint64](f, []int64{3, 1})
	ab := poly.Mul[uint64](f, h, poly.FromInt64[uint64](f, []int64{5, 2, 1}))
	got, err = GCDKnownDegree[uint64](f, h, ab, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, got, h) {
		t.Fatal("divisor case wrong")
	}
}
