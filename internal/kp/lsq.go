package kp

import (
	"errors"
	"fmt"

	"repro/internal/ff"
	"repro/internal/matrix"
)

// §5 extensions: least squares. "The techniques of Pan (1990a) combined
// with the processor efficient algorithms for linear system solving
// presented here immediately yield processor efficient least-squares
// solutions to general linear systems over any field of characteristic
// zero." Over characteristic zero the normal equations AᵀA·x = Aᵀb
// characterize the least-squares solutions, and AᵀA is non-singular
// exactly when A has full column rank.

// ErrCharacteristicZero is returned when LeastSquares is invoked over a
// positive-characteristic field, where "least squares" is not meaningful
// (the quadratic form xᵀx is degenerate).
var ErrCharacteristicZero = errors.New("kp: least squares requires characteristic zero")

// LeastSquares returns the least-squares solution of the (generally
// overdetermined) m×n system A·x ≈ b over a characteristic-zero field:
// the x minimizing (Ax−b)ᵀ(Ax−b). For full-column-rank A the solution is
// unique and solved through the Theorem 4 solver on the normal equations;
// otherwise one solution of the (always consistent) normal equations is
// returned via SolveSingular.
func LeastSquares[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], b []E, p Params) ([]E, error) {
	if f.Characteristic().Sign() != 0 {
		return nil, ErrCharacteristicZero
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("kp: LeastSquares needs a right-hand side matching the row count (A is %d×%d, b has %d entries): %w",
			a.Rows, a.Cols, len(b), ErrBadShape)
	}
	at := a.Transpose()
	g := matrix.Mul(f, at, a) // n×n Gram matrix
	rhs := at.MulVec(f, b)
	x, err := Solve(f, mul, g, rhs, p)
	if err == nil {
		return x, nil
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		return nil, err
	}
	// Rank-deficient A: the normal equations are still consistent.
	return SolveSingular(f, g, rhs, p)
}

// ResidualIsOrthogonal reports whether the residual b − A·x is orthogonal
// to the column space of A (Aᵀ(b − Ax) = 0) — the certificate that x is a
// least-squares solution, used by the tests.
func ResidualIsOrthogonal[E any](f ff.Field[E], a *matrix.Dense[E], x, b []E) bool {
	res := ff.VecSub(f, b, a.MulVec(f, x))
	return ff.VecIsZero(f, a.Transpose().MulVec(f, res))
}
