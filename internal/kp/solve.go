// Package kp implements the headline algorithms of Kaltofen–Pan (SPAA
// 1991): the Theorem 4 randomized solver for non-singular systems, the §2
// determinant, the Theorem 6 inverse obtained by Baur–Strassen
// differentiation of the determinant circuit, the transposed-system solver
// from the end of §4, and the §5 extensions (rank, singular systems,
// nullspace bases, least squares, polynomial GCD via structured matrices).
//
// Every core pipeline comes in two forms: a branch-free single attempt
// (XxxOnce) that runs over any ff.Field — including the circuit.Builder,
// which turns it into the paper's algebraic circuit — and a Las Vegas
// driver (Xxx) that draws randomness, verifies the result, and retries on
// unlucky choices, realizing the 1 − 3n²/|S| success probability.
package kp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/structured"
)

// Randomness is the O(n) random field elements of Theorems 4 and 6: the
// 2n−1 Hankel entries, the n diagonal entries, and the projection vectors
// u and v of the Wiedemann sequence.
type Randomness[E any] struct {
	H []E // Hankel preconditioner entries (2n−1)
	D []E // diagonal preconditioner entries (n)
	U []E // row projection (n)
	V []E // column projection (n)
}

// Flat returns the randomness as one slice in canonical order (H, D, U, V),
// the order the traced circuits consume their random inputs in.
func (r Randomness[E]) Flat() []E {
	out := make([]E, 0, len(r.H)+len(r.D)+len(r.U)+len(r.V))
	out = append(out, r.H...)
	out = append(out, r.D...)
	out = append(out, r.U...)
	out = append(out, r.V...)
	return out
}

// Count returns the number of random elements for dimension n: 5n−1 = O(n),
// matching the theorems' "O(n) nodes that denote random (input) elements".
func Count(n int) int { return 5*n - 1 }

// DrawRandomness samples the Theorem 4 randomness uniformly from the
// canonical subset of size subset. Diagonal entries are drawn non-zero (a
// zero entry is an automatic failure the analysis already charges for).
func DrawRandomness[E any](f ff.Field[E], src *ff.Source, n int, subset uint64) Randomness[E] {
	d := make([]E, n)
	for i := range d {
		d[i] = ff.SampleNonZero(f, src, subset)
	}
	return Randomness[E]{
		H: ff.SampleVec(f, src, 2*n-1, subset),
		D: d,
		U: ff.SampleVec(f, src, n, subset),
		V: ff.SampleVec(f, src, n, subset),
	}
}

// precondition returns Ã = A·H·D as a dense matrix (mul is the paper's
// matrix-multiplication black box, so the A·H product inherits its ω).
func precondition[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], rnd Randomness[E]) *matrix.Dense[E] {
	ah := mul.Mul(f, a, matrix.HankelDense(f, rnd.H))
	// The D factor scales columns; over large concrete fields this runs in
	// parallel on the matrix package's worker pool.
	return matrix.ScaleColumnsDiag(f, ah, rnd.D)
}

// charPolyOfPreconditioned runs the Theorem 4 front end: Krylov doubling on
// Ã and v, projection by u (the sequence (8)), the Lemma 1 Toeplitz system
// solved through the Theorem 3 machinery, and returns the (with high
// probability) characteristic polynomial λⁿ − c_{n−1}λ^{n−1} − … − c₀ of
// Ã, low degree first.
func charPolyOfPreconditioned[E any](f ff.Field[E], mul matrix.Multiplier[E], atilde *matrix.Dense[E], rnd Randomness[E]) ([]E, error) {
	return charPolyCtx(nil, f, mul, atilde, rnd, obs.PhaseKrylov, obs.PhaseMinPoly, nil)
}

// charPolyCtx is the context-aware core of charPolyOfPreconditioned, shared
// with the batch engine: span names are injected so the batch route records
// batch/krylov + batch/minpoly, and a non-nil pows cache captures the
// Ã^{2^i} ladder of the doubling for reuse by the backsolves.
func charPolyCtx[E any](ctx context.Context, f ff.Field[E], mul matrix.Multiplier[E], atilde *matrix.Dense[E], rnd Randomness[E], krylovPhase, minpolyPhase string, pows *[]*matrix.Dense[E]) ([]E, error) {
	n := atilde.Rows
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	// Sequence a_i = u·Ãⁱ·v, i = 0..2n−1, via the doubling of (9). Spans
	// close eagerly for tight timing and again via defer: the defer is the
	// leak guard that keeps no span (and no stale Observer current pointer)
	// open when an error, a cancellation or a panic exits early.
	sp := obs.StartPhaseCtx(ctx, krylovPhase)
	defer sp.End()
	v := &matrix.Dense[E]{Rows: n, Cols: 1, Data: append([]E(nil), rnd.V...)}
	k := matrix.KrylovBlockDoubling(f, mul, atilde, v, 2*n, pows)
	a := matrix.ProjectKrylov(f, rnd.U, k)
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	// Lemma 1 system: T_n·(c_{n−1},…,c₀)ᵀ = (a_n,…,a_{2n−1})ᵀ, solved with
	// the Toeplitz solver of §3 (Theorem 3 + Cayley–Hamilton).
	sp = obs.StartPhaseCtx(ctx, minpolyPhase)
	defer sp.End()
	tm := structured.NewToeplitz(a[:2*n-1])
	rhs := a[n : 2*n]
	c, err := structured.SolveParallel(f, mul, tm, rhs)
	sp.End()
	if err != nil {
		return nil, inPhase(minpolyPhase, err)
	}
	// Assemble λⁿ − c_{n−1}λ^{n−1} − … − c₀ (c is ordered high to low).
	cp := make([]E, n+1)
	for i := 0; i < n; i++ {
		cp[i] = f.Neg(c[n-1-i])
	}
	cp[n] = f.One()
	return cp, nil
}

// SolveOnce is one branch-free attempt at Theorem 4: solve A·x = b with the
// supplied randomness. It performs no zero tests; with unlucky randomness
// it either divides by zero (over a concrete field: an error; over the
// circuit builder: a division node that fails at evaluation) or returns a
// wrong vector, which the Las Vegas driver detects by checking A·x = b.
func SolveOnce[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], b []E, rnd Randomness[E]) ([]E, error) {
	return solveOnceCtx(nil, f, mul, a, b, rnd)
}

// solveOnceCtx is SolveOnce with cooperative cancellation checked between
// the precondition/krylov/minpoly/backsolve phases.
func solveOnceCtx[E any](ctx context.Context, f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], b []E, rnd Randomness[E]) ([]E, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("kp: SolveOnce needs a square system")
	}
	sp := obs.StartPhaseCtx(ctx, obs.PhasePrecondition)
	defer sp.End()
	atilde := precondition(f, mul, a, rnd)
	sp.End()
	cp, err := charPolyCtx(ctx, f, mul, atilde, rnd, obs.PhaseKrylov, obs.PhaseMinPoly, nil)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	// Cayley–Hamilton: x̃ = −(1/pₙ)·Σ_{j=0}^{n−1} p_{n−1−j}·Ãʲ·b, with
	// pₙ = cp[0] and p_{n−1−j} = cp[j+1]; the Krylov vectors Ãʲb come from
	// one more doubling pass.
	sp = obs.StartPhaseCtx(ctx, obs.PhaseBacksolve)
	defer sp.End()
	kb := matrix.KrylovDoubling(f, mul, atilde, b, n)
	var acc []E
	if _, fused := ff.KernelsOf[E](f); fused {
		// Row i of the Krylov matrix holds (Ãʲb)_i, j = 0..n−1: each output
		// entry is one contiguous fused dot against the coefficients.
		acc = make([]E, n)
		for i := 0; i < n; i++ {
			acc[i] = ff.DotFused(f, kb.Data[i*n:(i+1)*n], cp[1:n+1])
		}
	} else {
		// Balanced vector tree — the O(log n)-depth accumulation the traced
		// circuit (TraceSolve) must keep.
		scaled := make([][]E, n)
		for j := 0; j < n; j++ {
			scaled[j] = ff.VecScale(f, cp[j+1], kb.Col(j))
		}
		acc = ff.SumVecs(f, scaled)
	}
	scale, err := f.Div(f.Neg(f.One()), cp[0])
	if err != nil {
		return nil, inPhase(obs.PhaseBacksolve, err)
	}
	ff.VecScaleInto(f, acc, scale, acc)
	xt := acc
	// x = H·(D·x̃): undo the preconditioning.
	dx := make([]E, n)
	for i := range dx {
		dx[i] = f.Mul(rnd.D[i], xt[i])
	}
	h := structured.NewHankel(rnd.H)
	return h.MulVec(f, dx), nil
}

// Solve is the Las Vegas Theorem 4 driver: it draws fresh randomness,
// attempts SolveOnce, verifies A·x = b, and retries on failure. A returned
// solution is always correct; ErrRetriesExhausted after Params.Retries
// attempts indicates a singular matrix except with negligible probability.
// Requires characteristic 0 or > n (Theorem 4's hypothesis). The zero
// Params is a valid default configuration.
func Solve[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], b []E, p Params) ([]E, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("kp: Solve needs a square system with a matching right-hand side (A is %d×%d, b has %d entries): %w",
			a.Rows, a.Cols, len(b), ErrBadShape)
	}
	p = fill(f, p)
	rec := newAttemptRecorder(solverSolve, n, 1, p)
	for attempt := 0; attempt < p.Retries; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			rec.finish(err)
			return nil, err
		}
		rnd := DrawRandomness(f, p.Src, n, p.Subset)
		start := time.Now()
		var x []E
		var err error
		if p.Precond == PrecondImplicit {
			x, err = solveOnceImplicitCtx(p.Ctx, f, a, b, rnd)
		} else {
			x, err = solveOnceCtx(p.Ctx, f, mul, a, b, rnd)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				rec.finish(err)
				return nil, err
			}
			rec.attemptErr(err, time.Since(start))
			if isDivisionError(err) {
				continue // unlucky randomness (or singular input)
			}
			rec.finish(err)
			return nil, err
		}
		if ff.VecEqual(f, a.MulVec(f, x), b) {
			rec.attempt(obs.OutcomeSuccess, "", time.Since(start))
			rec.finish(nil)
			return x, nil
		}
		rec.attempt(obs.OutcomeVerifyFailed, "verify", time.Since(start))
	}
	rec.finish(ErrRetriesExhausted)
	return nil, ErrRetriesExhausted
}

// TraceSolve builds the Theorem 4 circuit for dimension n: inputs are the
// n² entries of A and the n entries of b; the 5n−1 random elements enter as
// random-input nodes; the n outputs are A⁻¹b. The circuit has size
// O(n^ω·log n) (with the classical multiplier, ω = 3) and depth
// O((log n)²), and divides by zero only on unlucky random values — exactly
// the statement of Theorem 4.
func TraceSolve[E any](model ff.Field[E], mul matrix.Multiplier[circuit.Wire], n int) (*circuit.Builder, error) {
	b := circuit.NewBuilderFor(model)
	aw := matrixInput(b, n)
	bw := b.Inputs(n)
	rnd := randomnessInput(b, n)
	x, err := SolveOnce[circuit.Wire](b, mul, aw, bw, rnd)
	if err != nil {
		return nil, err
	}
	b.Return(x...)
	return b, nil
}

// matrixInput declares an n×n input matrix (row-major input order).
func matrixInput(b *circuit.Builder, n int) *matrix.Dense[circuit.Wire] {
	return &matrix.Dense[circuit.Wire]{Rows: n, Cols: n, Data: b.Inputs(n * n)}
}

// randomnessInput declares the Theorem 4 randomness as random-input nodes,
// in the canonical Flat order.
func randomnessInput(b *circuit.Builder, n int) Randomness[circuit.Wire] {
	return Randomness[circuit.Wire]{
		H: b.RandomInputs(2*n - 1),
		D: b.RandomInputs(n),
		U: b.RandomInputs(n),
		V: b.RandomInputs(n),
	}
}
