package kp

import (
	"errors"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/poly"
)

// The paper's §4 ends: "In a special case this construction gives us a
// fast transposed Vandermonde system solver based on fast polynomial
// interpolation." Realized here literally: interpolation computes
// c = V⁻¹y (V the Vandermonde matrix of the nodes), so tracing
//
//	f(y) = (V⁻¹y)ᵀ·b
//
// through the fast interpolation circuit and differentiating with respect
// to y (Theorem 5) yields x = (Vᵀ)⁻¹·b at 4× the interpolation cost — no
// transposed algorithm is ever written.

// ErrRepeatedNodes is returned when the Vandermonde nodes are not pairwise
// distinct (the only failure mode: V is singular exactly then).
var ErrRepeatedNodes = errors.New("kp: repeated Vandermonde nodes")

// TraceTransposedVandermonde builds the circuit computing (Vᵀ)⁻¹b for n
// interpolation nodes. Inputs: nodes xs (n), then b (n), then the
// differentiation variables y (n, evaluated at any point — zeros at
// evaluation time). Outputs: the n entries of (Vᵀ)⁻¹b.
func TraceTransposedVandermonde[E any](model ff.Field[E], n int) (*circuit.Builder, error) {
	bld := circuit.NewBuilderFor(model)
	xs := bld.Inputs(n)
	bw := bld.Inputs(n)
	yw := bld.Inputs(n)
	c, err := poly.InterpolateFast[circuit.Wire](bld, xs, yw)
	if err != nil {
		return nil, err
	}
	// Pad the coefficient vector to length n (interpolants may have lower
	// degree symbolically only through structural zeros, but be safe).
	cw := make([]circuit.Wire, n)
	for i := range cw {
		cw[i] = poly.Coef[circuit.Wire](bld, c, i)
	}
	f := ff.Dot[circuit.Wire](bld, cw, bw)
	grads, err := circuit.Gradient(bld, f)
	if err != nil {
		return nil, err
	}
	outs := make([]circuit.Wire, n)
	copy(outs, grads[2*n:3*n]) // gradient with respect to the y inputs
	bld.Return(outs...)
	return bld, nil
}

// TransposedVandermondeSolve solves Vᵀ·x = b for the Vandermonde matrix V
// of the given pairwise-distinct nodes, via the traced-and-differentiated
// fast interpolation. The result satisfies Σᵢ xᵢ·xsᵢ^j = b_j and is
// verified before being returned.
func TransposedVandermondeSolve[E any](f ff.Field[E], xs, b []E) ([]E, error) {
	n := len(xs)
	if len(b) != n {
		panic("kp: TransposedVandermondeSolve dimension mismatch")
	}
	if n == 0 {
		return nil, nil
	}
	circ, err := TraceTransposedVandermonde(f, n)
	if err != nil {
		return nil, err
	}
	inputs := make([]E, 0, 3*n)
	inputs = append(inputs, xs...)
	inputs = append(inputs, b...)
	inputs = append(inputs, ff.VecZero(f, n)...) // y: any point, f is linear
	x, err := circuit.Eval(circ, f, inputs)
	if err != nil {
		if errors.Is(err, ff.ErrDivisionByZero) {
			return nil, ErrRepeatedNodes
		}
		return nil, err
	}
	if !ff.VecEqual(f, poly.VandermondeTransposedApply(f, xs, x), b) {
		return nil, ErrRepeatedNodes // unreachable for distinct nodes
	}
	return x, nil
}
