package kp

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

var fp = ff.MustFp64(ff.P31)

func classical() matrix.Classical[uint64] { return matrix.Classical[uint64]{} }

func randNonsingular(t *testing.T, src *ff.Source, n int) *matrix.Dense[uint64] {
	t.Helper()
	for {
		a := matrix.Random[uint64](fp, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](fp, a); !fp.IsZero(d) {
			return a
		}
	}
}

func TestSolveMatchesLU(t *testing.T) {
	src := ff.NewSource(121)
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		a := randNonsingular(t, src, n)
		b := ff.SampleVec[uint64](fp, src, n, ff.P31)
		x, err := Solve[uint64](fp, classical(), a, b, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := matrix.Solve[uint64](fp, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](fp, x, want) {
			t.Fatalf("n=%d: KP solution differs from LU", n)
		}
	}
}

func TestSolveSingularExhausts(t *testing.T) {
	src := ff.NewSource(123)
	s := matrix.FromRows[uint64](fp, [][]int64{{1, 2}, {2, 4}})
	if _, err := Solve[uint64](fp, classical(), s, []uint64{1, 1}, Params{Src: src, Subset: ff.P31, Retries: 3}); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

func TestSolveOverRationals(t *testing.T) {
	f := ff.NewRat()
	src := ff.NewSource(124)
	a := matrix.FromRows[*big.Rat](f, [][]int64{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}})
	b := ff.VecFromInt64[*big.Rat](f, []int64{1, 2, 3})
	x, err := Solve[*big.Rat](f, matrix.Classical[*big.Rat]{}, a, b, Params{Src: src, Subset: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[*big.Rat](f, a.MulVec(f, x), b) {
		t.Fatal("rational solve wrong")
	}
}

func TestDetMatchesLU(t *testing.T) {
	src := ff.NewSource(125)
	for _, n := range []int{1, 2, 3, 5, 9} {
		a := randNonsingular(t, src, n)
		got, err := Det[uint64](fp, classical(), a, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := matrix.Det[uint64](fp, a)
		if got != want {
			t.Fatalf("n=%d: KP det = %d, LU det = %d", n, got, want)
		}
	}
}

func TestTraceSolveCircuitMatchesConcrete(t *testing.T) {
	src := ff.NewSource(127)
	for _, n := range []int{1, 2, 4, 6} {
		circ, err := TraceSolve[uint64](fp, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			t.Fatal(err)
		}
		m := circ.Metrics()
		if m.Inputs != n*n+n+Count(n) {
			t.Fatalf("n=%d: circuit inputs %d, want %d", n, m.Inputs, n*n+n+Count(n))
		}
		if m.Randoms != Count(n) {
			t.Fatalf("n=%d: circuit randoms %d, want %d", n, m.Randoms, Count(n))
		}
		a := randNonsingular(t, src, n)
		b := ff.SampleVec[uint64](fp, src, n, ff.P31)
		rnd := DrawRandomness[uint64](fp, src, n, ff.P31)
		inputs := append(append(append([]uint64{}, a.Data...), b...), rnd.Flat()...)
		got, err := circuit.Eval[uint64](circ, fp, inputs)
		if err != nil {
			t.Fatalf("n=%d: circuit eval: %v", n, err)
		}
		want, err := SolveOnce[uint64](fp, classical(), a, b, rnd)
		if err != nil {
			t.Fatalf("n=%d: concrete SolveOnce: %v", n, err)
		}
		if !ff.VecEqual[uint64](fp, got, want) {
			t.Fatalf("n=%d: traced circuit disagrees with concrete pipeline", n)
		}
		// And both solve the system.
		if !ff.VecEqual[uint64](fp, a.MulVec(fp, got), b) {
			t.Fatalf("n=%d: circuit output does not solve the system", n)
		}
	}
}

func TestTraceSolveDepthPolylog(t *testing.T) {
	// Depth must grow like (log n)², far below any linear trend: compare
	// the growth ratio against dimension doubling.
	var depths []int
	for _, n := range []int{4, 8, 16} {
		circ, err := TraceSolve[uint64](fp, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			t.Fatal(err)
		}
		depths = append(depths, circ.Depth())
	}
	for i := 1; i < len(depths); i++ {
		if depths[i] >= 2*depths[i-1] {
			t.Fatalf("depth doubled with n: %v — not polylog", depths)
		}
	}
}

func TestTraceDetCircuit(t *testing.T) {
	src := ff.NewSource(129)
	for _, n := range []int{1, 2, 3, 5} {
		circ, err := TraceDet[uint64](fp, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			t.Fatal(err)
		}
		a := randNonsingular(t, src, n)
		rnd := DrawRandomness[uint64](fp, src, n, ff.P31)
		inputs := append(append([]uint64{}, a.Data...), rnd.Flat()...)
		got, err := circuit.Eval[uint64](circ, fp, inputs)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := matrix.Det[uint64](fp, a)
		if got[0] != want {
			t.Fatalf("n=%d: det circuit = %d, LU = %d", n, got[0], want)
		}
	}
}

func TestInverseTheorem6(t *testing.T) {
	src := ff.NewSource(131)
	for _, n := range []int{1, 2, 3, 5, 8} {
		a := randNonsingular(t, src, n)
		inv, err := Inverse[uint64](fp, classical(), a, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Mul[uint64](fp, a, inv).Equal(fp, matrix.Identity[uint64](fp, n)) {
			t.Fatalf("n=%d: A·A⁻¹ != I", n)
		}
		want, err := matrix.Inverse[uint64](fp, a)
		if err != nil {
			t.Fatal(err)
		}
		if !inv.Equal(fp, want) {
			t.Fatalf("n=%d: Theorem 6 inverse differs from LU inverse", n)
		}
	}
}

func TestInverseCircuitSizeRatio(t *testing.T) {
	// Theorem 5/6: the inverse circuit is at most ~4× the det circuit
	// plus n² divisions, at comparable depth.
	for _, n := range []int{4, 8} {
		det, err := TraceDet[uint64](fp, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := TraceInverse[uint64](fp, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(inv.Size()-n*n) / float64(det.Size())
		if ratio > 5 {
			t.Fatalf("n=%d: inverse/det size ratio %.2f > 5", n, ratio)
		}
		if inv.Depth() > 5*det.Depth()+16 {
			t.Fatalf("n=%d: inverse depth %d vs det depth %d", n, inv.Depth(), det.Depth())
		}
	}
}

func TestTransposedSolve(t *testing.T) {
	src := ff.NewSource(133)
	for _, n := range []int{1, 2, 4, 6} {
		a := randNonsingular(t, src, n)
		b := ff.SampleVec[uint64](fp, src, n, ff.P31)
		x, err := TransposedSolve[uint64](fp, a, b, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](fp, a.Transpose().MulVec(fp, x), b) {
			t.Fatalf("n=%d: Aᵀx != b", n)
		}
	}
}

func TestRankPlanted(t *testing.T) {
	src := ff.NewSource(135)
	for _, tc := range []struct{ n, r int }{{4, 2}, {6, 3}, {7, 7}, {5, 0}, {8, 1}} {
		a := plantedRank(src, tc.n, tc.r)
		got, err := Rank[uint64](fp, a, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.r {
			t.Fatalf("n=%d: Rank = %d, want %d", tc.n, got, tc.r)
		}
	}
	// Rectangular.
	l := matrix.Random[uint64](fp, src, 6, 2, ff.P31)
	r := matrix.Random[uint64](fp, src, 2, 9, ff.P31)
	a := matrix.Mul[uint64](fp, l, r)
	got, err := Rank[uint64](fp, a, Params{Src: src, Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("rectangular rank = %d, want 2", got)
	}
}

func plantedRank(src *ff.Source, n, r int) *matrix.Dense[uint64] {
	if r == 0 {
		return matrix.NewDense[uint64](fp, n, n)
	}
	for {
		l := matrix.Random[uint64](fp, src, n, r, ff.P31)
		rm := matrix.Random[uint64](fp, src, r, n, ff.P31)
		m := matrix.Mul[uint64](fp, l, rm)
		if got, _ := matrix.Rank[uint64](fp, m); got == r {
			return m
		}
	}
}

func TestNullspace(t *testing.T) {
	src := ff.NewSource(137)
	for _, tc := range []struct{ n, r int }{{4, 2}, {6, 3}, {5, 5}, {5, 0}, {7, 1}} {
		a := plantedRank(src, tc.n, tc.r)
		ns, err := Nullspace[uint64](fp, a, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatal(err)
		}
		if ns.Cols != tc.n-tc.r {
			t.Fatalf("n=%d r=%d: nullity %d", tc.n, tc.r, ns.Cols)
		}
		if ns.Cols == 0 {
			continue
		}
		if !matrix.Mul[uint64](fp, a, ns).IsZero(fp) {
			t.Fatal("A·N != 0")
		}
		rk, err := matrix.Rank[uint64](fp, ns)
		if err != nil {
			t.Fatal(err)
		}
		if rk != ns.Cols {
			t.Fatal("nullspace basis not independent")
		}
	}
}

func TestSolveSingularConsistent(t *testing.T) {
	src := ff.NewSource(139)
	for _, tc := range []struct{ n, r int }{{4, 2}, {6, 3}, {5, 1}} {
		a := plantedRank(src, tc.n, tc.r)
		// Consistent rhs: b = A·y for random y.
		y := ff.SampleVec[uint64](fp, src, tc.n, ff.P31)
		b := a.MulVec(fp, y)
		x, err := SolveSingular[uint64](fp, a, b, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatalf("n=%d r=%d: %v", tc.n, tc.r, err)
		}
		if !ff.VecEqual[uint64](fp, a.MulVec(fp, x), b) {
			t.Fatal("singular solve: Ax != b")
		}
	}
}

func TestSolveSingularInconsistent(t *testing.T) {
	src := ff.NewSource(141)
	a := plantedRank(src, 5, 2)
	// b outside the column space: random vector is outside whp; verify.
	var b []uint64
	for {
		b = ff.SampleVec[uint64](fp, src, 5, ff.P31)
		if _, err := matrix.Solve[uint64](fp, a, b); err != nil {
			// LU says singular; check true inconsistency via rank of [A|b].
			aug := matrix.NewDense[uint64](fp, 5, 6)
			for i := 0; i < 5; i++ {
				for j := 0; j < 5; j++ {
					aug.Set(i, j, a.At(i, j))
				}
				aug.Set(i, 5, b[i])
			}
			ra, _ := matrix.Rank[uint64](fp, a)
			raug, _ := matrix.Rank[uint64](fp, aug)
			if raug > ra {
				break
			}
		}
	}
	if _, err := SolveSingular[uint64](fp, a, b, Params{Src: src, Subset: ff.P31}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestLeastSquares(t *testing.T) {
	f := ff.NewRat()
	src := ff.NewSource(143)
	// Overdetermined full-column-rank system.
	a := matrix.FromRows[*big.Rat](f, [][]int64{{1, 0}, {0, 1}, {1, 1}})
	b := ff.VecFromInt64[*big.Rat](f, []int64{1, 2, 0})
	x, err := LeastSquares[*big.Rat](f, matrix.Classical[*big.Rat]{}, a, b, Params{Src: src, Subset: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !ResidualIsOrthogonal[*big.Rat](f, a, x, b) {
		t.Fatal("residual not orthogonal to column space")
	}
	// Known solution: normal equations [[2,1],[1,2]]x = [1,2] ⇒ x = (0, 1).
	if x[0].Cmp(f.FromInt64(0)) != 0 || x[1].Cmp(f.FromInt64(1)) != 0 {
		t.Fatalf("least squares = (%s, %s), want (0, 1)", x[0], x[1])
	}
	// Positive characteristic must be refused.
	if _, err := LeastSquares[uint64](fp, classical(), matrix.Identity[uint64](fp, 2), []uint64{1, 2}, Params{Src: src, Subset: ff.P31}); !errors.Is(err, ErrCharacteristicZero) {
		t.Fatalf("char > 0: err = %v", err)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	f := ff.NewRat()
	src := ff.NewSource(144)
	// Column 2 = 2·column 1: rank-deficient normal equations.
	a := matrix.FromRows[*big.Rat](f, [][]int64{{1, 2}, {2, 4}, {3, 6}})
	b := ff.VecFromInt64[*big.Rat](f, []int64{1, 1, 1})
	x, err := LeastSquares[*big.Rat](f, matrix.Classical[*big.Rat]{}, a, b, Params{Src: src, Subset: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !ResidualIsOrthogonal[*big.Rat](f, a, x, b) {
		t.Fatal("rank-deficient least squares residual not orthogonal")
	}
}

func TestGCDSylvester(t *testing.T) {
	src := ff.NewSource(145)
	for trial := 0; trial < 30; trial++ {
		g := randomPoly(src, 1+src.Intn(4))
		a := poly.Mul[uint64](fp, g, randomPoly(src, 1+src.Intn(5)))
		b := poly.Mul[uint64](fp, g, randomPoly(src, 1+src.Intn(5)))
		want, err := poly.GCD[uint64](fp, a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GCDSylvester[uint64](fp, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !poly.Equal[uint64](fp, got, want) {
			t.Fatalf("Sylvester gcd %s != Euclid gcd %s",
				poly.String[uint64](fp, got), poly.String[uint64](fp, want))
		}
		d, err := GCDDegreeSylvester[uint64](fp, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d != poly.Deg[uint64](fp, want) {
			t.Fatalf("degree via rank %d, want %d", d, poly.Deg[uint64](fp, want))
		}
	}
	// Coprime pair.
	a := poly.FromInt64[uint64](fp, []int64{1, 1})    // λ + 1
	b := poly.FromInt64[uint64](fp, []int64{2, 0, 1}) // λ² + 2
	got, err := GCDSylvester[uint64](fp, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Deg[uint64](fp, got) != 0 {
		t.Fatal("coprime pair gcd not constant")
	}
}

func TestResultantSylvesterVsEuclid(t *testing.T) {
	src := ff.NewSource(147)
	for trial := 0; trial < 25; trial++ {
		a := randomPoly(src, 1+src.Intn(6))
		b := randomPoly(src, 1+src.Intn(6))
		rs, err := ResultantSylvester[uint64](fp, a, b)
		if err != nil {
			t.Fatal(err)
		}
		re, err := poly.Resultant[uint64](fp, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Conventions may differ by sign; vanishing must agree exactly.
		if fp.IsZero(rs) != fp.IsZero(re) {
			t.Fatalf("resultant vanishing disagreement: Sylvester %d, Euclid %d", rs, re)
		}
		if rs != re && rs != fp.Neg(re) {
			t.Fatalf("resultants differ beyond sign: %d vs %d", rs, re)
		}
	}
	// Shared root forces zero.
	shared := poly.Mul[uint64](fp, poly.FromInt64[uint64](fp, []int64{-3, 1}),
		poly.FromInt64[uint64](fp, []int64{1, 1}))
	other := poly.Mul[uint64](fp, poly.FromInt64[uint64](fp, []int64{-3, 1}),
		poly.FromInt64[uint64](fp, []int64{5, 1}))
	rs, err := ResultantSylvester[uint64](fp, shared, other)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.IsZero(rs) {
		t.Fatal("resultant with common root must vanish")
	}
}

func randomPoly(src *ff.Source, deg int) []uint64 {
	p := make([]uint64, deg+1)
	for i := range p {
		p[i] = src.Uint64n(ff.P31)
	}
	p[deg] = 1 + src.Uint64n(ff.P31-1)
	return p
}
