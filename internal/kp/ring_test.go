package kp

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/rns"
)

// randIntMat draws an n×n integer matrix with entries in [−mag, mag].
func randIntMat(src *ff.Source, n int, mag int64) *rns.IntMat {
	m := rns.NewIntMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, big.NewInt(int64(src.Uint64n(uint64(2*mag+1)))-mag))
		}
	}
	return m
}

func randIntVec(src *ff.Source, n int, mag int64) []*big.Int {
	v := make([]*big.Int, n)
	for i := range v {
		v[i] = big.NewInt(int64(src.Uint64n(uint64(2*mag+1))) - mag)
	}
	return v
}

// ratDense views an IntMat over the exact rational field for the
// differential oracle.
func ratDense(a *rns.IntMat) *matrix.Dense[*big.Rat] {
	d := &matrix.Dense[*big.Rat]{Rows: a.Rows, Cols: a.Cols, Data: make([]*big.Rat, a.Rows*a.Cols)}
	for i, e := range a.Data {
		d.Data[i] = new(big.Rat).SetInt(e)
	}
	return d
}

// TestSolveIntDifferential: the multi-modulus engine agrees bit-exactly
// with big-rational Gaussian elimination across dimensions up to 32,
// and the answers carry the Verified flag from the exact ℤ check.
func TestSolveIntDifferential(t *testing.T) {
	src := ff.NewSource(11)
	rat := ff.NewRat()
	for _, n := range []int{1, 2, 3, 5, 8, 13, 32} {
		a := randIntMat(src, n, 50)
		b := randIntVec(src, n, 50)
		x, stats, err := SolveInt(nil, a, b, rns.Params{}, Params{Src: ff.NewSource(uint64(n))})
		if errors.Is(err, ErrSingular) {
			continue // unlucky draw; the oracle would agree
		}
		if err != nil {
			t.Fatalf("n=%d: SolveInt: %v", n, err)
		}
		if !stats.Verified {
			t.Fatalf("n=%d: result not verified", n)
		}
		if stats.Residues < 1 || len(stats.Primes) != stats.Residues {
			t.Fatalf("n=%d: inconsistent stats: %+v", n, stats)
		}
		br := make([]*big.Rat, n)
		for i := range br {
			br[i] = new(big.Rat).SetInt(b[i])
		}
		want, err := matrix.Solve(rat, ratDense(a), br)
		if err != nil {
			t.Fatalf("n=%d: oracle: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if x.Rat(i).Cmp(want[i]) != 0 {
				t.Fatalf("n=%d: x[%d] = %s, oracle %s", n, i, x.Rat(i).RatString(), want[i].RatString())
			}
		}
	}
}

// TestDetIntDifferential: exact integer determinants match the
// big-rational oracle, including sign.
func TestDetIntDifferential(t *testing.T) {
	src := ff.NewSource(23)
	rat := ff.NewRat()
	for _, n := range []int{1, 2, 4, 9, 16} {
		a := randIntMat(src, n, 30)
		det, stats, err := DetInt(nil, a, rns.Params{}, Params{Src: ff.NewSource(uint64(n))})
		if err != nil {
			t.Fatalf("n=%d: DetInt: %v", n, err)
		}
		if !stats.Verified {
			t.Fatalf("n=%d: determinant not verified", n)
		}
		d, err := matrix.Det(rat, ratDense(a))
		if err != nil {
			t.Fatalf("n=%d: oracle: %v", n, err)
		}
		if !d.IsInt() || d.Num().Cmp(det) != 0 {
			t.Fatalf("n=%d: det = %s, oracle %s", n, det, d.RatString())
		}
	}
}

// TestSolveIntBadPrimeReplacement forces det(A) ≡ 0 mod the first
// generated prime: A = diag(p₀, 1, …, 1) has det = p₀, so the engine must
// detect the singular residue, replace p₀, and still return the exact
// answer. This is the Las Vegas bad-prime path of the issue's acceptance
// list.
func TestSolveIntBadPrimeReplacement(t *testing.T) {
	p0, err := ff.GenerateNTTPrimes(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 4
	a := rns.NewIntMat(n, n)
	a.Set(0, 0, new(big.Int).SetUint64(p0[0]))
	for i := 1; i < n; i++ {
		a.Set(i, i, big.NewInt(1))
	}
	b := []*big.Int{big.NewInt(3), big.NewInt(-7), big.NewInt(0), big.NewInt(5)}
	x, stats, err := SolveInt(nil, a, b, rns.Params{}, Params{})
	if err != nil {
		t.Fatalf("SolveInt: %v", err)
	}
	if stats.BadPrimes < 1 {
		t.Fatalf("expected at least one bad prime, stats: %+v", stats)
	}
	for _, q := range stats.Primes {
		if q == p0[0] {
			t.Fatalf("bad prime %d still in the CRT set", p0[0])
		}
	}
	// x = (3/p₀, −7, 0, 5).
	if got, want := x.Rat(0), new(big.Rat).SetFrac(big.NewInt(3), new(big.Int).SetUint64(p0[0])); got.Cmp(want) != 0 {
		t.Fatalf("x[0] = %s, want %s", got.RatString(), want.RatString())
	}
	if got := x.Rat(1); got.Cmp(big.NewRat(-7, 1)) != 0 {
		t.Fatalf("x[1] = %s, want -7", got.RatString())
	}

	// The determinant path replaces the prime too and returns det = p₀.
	det, dstats, err := DetInt(nil, a, rns.Params{}, Params{})
	if err != nil {
		t.Fatalf("DetInt: %v", err)
	}
	if det.Cmp(new(big.Int).SetUint64(p0[0])) != 0 {
		t.Fatalf("det = %s, want %d", det, p0[0])
	}
	if dstats.BadPrimes < 1 {
		t.Fatalf("det path saw no bad prime: %+v", dstats)
	}
}

// TestSingularOverQQ: a genuinely singular matrix exhausts the bad-prime
// budget; Solve reports ErrSingular and Det returns exactly 0.
func TestSingularOverQQ(t *testing.T) {
	a := rns.IntMatFromInt64([][]int64{
		{1, 2, 3},
		{2, 4, 6}, // 2 × row 0
		{0, 1, -1},
	})
	b := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3)}
	if _, _, err := SolveInt(nil, a, b, rns.Params{}, Params{Retries: 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("SolveInt on singular matrix: err = %v, want ErrSingular", err)
	}
	det, _, err := DetInt(nil, a, rns.Params{}, Params{Retries: 2})
	if err != nil {
		t.Fatalf("DetInt on singular matrix: %v", err)
	}
	if det.Sign() != 0 {
		t.Fatalf("det = %s, want 0", det)
	}
}

// TestSolveRatClearsDenominators: the ℚ entry point matches a hand-solved
// rational system.
func TestSolveRatClearsDenominators(t *testing.T) {
	a := [][]*big.Rat{
		{big.NewRat(1, 2), big.NewRat(1, 3)},
		{big.NewRat(-2, 5), big.NewRat(1, 1)},
	}
	b := []*big.Rat{big.NewRat(5, 6), big.NewRat(3, 5)}
	x, stats, err := SolveRat(nil, a, b, rns.Params{}, Params{})
	if err != nil {
		t.Fatalf("SolveRat: %v", err)
	}
	if !stats.Verified {
		t.Fatal("not verified")
	}
	// Check A·x = b exactly over ℚ.
	for i := range a {
		acc := new(big.Rat)
		for j := range a[i] {
			acc.Add(acc, new(big.Rat).Mul(a[i][j], x.Rat(j)))
		}
		if acc.Cmp(b[i]) != 0 {
			t.Fatalf("row %d: A·x = %s, want %s", i, acc.RatString(), b[i].RatString())
		}
	}
}

// TestRankInt: rank over ℚ of a rectangular matrix with known rank.
func TestRankInt(t *testing.T) {
	a := rns.IntMatFromInt64([][]int64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},  // dependent
		{0, 1, 1, -1},
	})
	r, stats, err := RankInt(nil, a, rns.Params{}, Params{})
	if err != nil {
		t.Fatalf("RankInt: %v", err)
	}
	if r != 2 {
		t.Fatalf("rank = %d, want 2", r)
	}
	if stats.Residues < 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestForcedPrimesTooSmall: a forced single-prime run on an answer that
// needs several residues fails loudly with ErrBoundTooSmall — the typed
// error of the api redesign — rather than returning an aliased answer.
func TestForcedPrimesTooSmall(t *testing.T) {
	src := ff.NewSource(99)
	n := 8
	a := randIntMat(src, n, 1000)
	b := randIntVec(src, n, 1000)
	_, _, err := SolveInt(nil, a, b, rns.Params{Primes: 1}, Params{})
	if err == nil {
		t.Fatal("forced 1-prime solve succeeded; want ErrBoundTooSmall")
	}
	if !errors.Is(err, rns.ErrBoundTooSmall) {
		t.Fatalf("err = %v, want ErrBoundTooSmall", err)
	}
}

// TestVerifyOffSkipsCheck: VerifyOff leaves Verified false but the
// certified bound still yields the exact answer.
func TestVerifyOffSkipsCheck(t *testing.T) {
	a := rns.IntMatFromInt64([][]int64{{2, 1}, {1, 3}})
	b := []*big.Int{big.NewInt(5), big.NewInt(10)}
	x, stats, err := SolveInt(nil, a, b, rns.Params{Verify: rns.VerifyOff}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verified {
		t.Fatal("Verified true with VerifyOff")
	}
	// x = (1, 3): 2+3=5, 1+9=10.
	if x.Rat(0).Cmp(big.NewRat(1, 1)) != 0 || x.Rat(1).Cmp(big.NewRat(3, 1)) != 0 {
		t.Fatalf("x = (%s, %s), want (1, 3)", x.Rat(0), x.Rat(1))
	}
}

// TestIntEngineCacheReuse: a second solve of the same matrix hits the
// per-prime factorization cache for every residue (the prime sequence is
// deterministic per matrix), and a different right-hand side still
// verifies.
func TestIntEngineCacheReuse(t *testing.T) {
	src := ff.NewSource(5)
	n := 6
	a := randIntMat(src, n, 40)
	b1 := randIntVec(src, n, 40)
	b2 := randIntVec(src, n, 40)
	e := NewIntEngine(nil)
	_, s1, err := e.Solve(context.Background(), a, b1, rns.Params{}, Params{})
	if err != nil {
		t.Fatalf("first solve: %v", err)
	}
	if s1.CacheHits != 0 || s1.CacheMisses != s1.Residues {
		t.Fatalf("first solve cache stats: %+v", s1)
	}
	x2, s2, err := e.Solve(context.Background(), a, b2, rns.Params{}, Params{})
	if err != nil {
		t.Fatalf("second solve: %v", err)
	}
	if s2.CacheHits != s2.Residues || s2.CacheMisses != 0 {
		t.Fatalf("second solve did not reuse factorizations: %+v", s2)
	}
	if !s2.Verified {
		t.Fatal("cached path skipped verification")
	}
	if !intResidualOK(a, x2, b2) {
		t.Fatal("cached solve returned a wrong answer")
	}
	if e.CacheLen() == 0 {
		t.Fatal("engine cache empty after two solves")
	}
}

func intResidualOK(a *rns.IntMat, v *rns.RatVec, b []*big.Int) bool {
	return intResidualZero(a, v, b)
}

// TestIntEngineConcurrentCallers: one engine, many goroutines, distinct
// matrices — exercises the cache and source-splitting under concurrency
// (meaningful under -race).
func TestIntEngineConcurrentCallers(t *testing.T) {
	e := NewIntEngine(nil)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			src := ff.NewSource(uint64(100 + g))
			a := randIntMat(src, 5, 25)
			b := randIntVec(src, 5, 25)
			x, _, err := e.Solve(context.Background(), a, b, rns.Params{}, Params{Src: ff.NewSource(uint64(g))})
			if err != nil {
				if errors.Is(err, ErrSingular) {
					done <- nil
					return
				}
				done <- err
				return
			}
			if !intResidualZero(a, x, b) {
				done <- errors.New("wrong answer under concurrency")
				return
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSolveIntContextCancelled: a pre-cancelled context surfaces promptly
// as context.Canceled, not as a solver failure.
func TestSolveIntContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := ff.NewSource(3)
	a := randIntMat(src, 6, 30)
	b := randIntVec(src, 6, 30)
	_, _, err := NewIntEngine(nil).Solve(ctx, a, b, rns.Params{}, Params{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveIntImplicitPrecond: the implicit preconditioner path (NTT
// Hankel applies per residue) returns the same exact answer — the primes
// are NTT-friendly by construction, so the fast path is always available.
func TestSolveIntImplicitPrecond(t *testing.T) {
	src := ff.NewSource(17)
	n := 8
	a := randIntMat(src, n, 60)
	b := randIntVec(src, n, 60)
	xd, _, err := SolveInt(nil, a, b, rns.Params{}, Params{Src: ff.NewSource(1)})
	if err != nil {
		t.Fatalf("dense: %v", err)
	}
	xi, _, err := SolveInt(nil, a, b, rns.Params{}, Params{Src: ff.NewSource(1), Precond: PrecondImplicit})
	if err != nil {
		t.Fatalf("implicit: %v", err)
	}
	for i := 0; i < n; i++ {
		if xd.Rat(i).Cmp(xi.Rat(i)) != 0 {
			t.Fatalf("coordinate %d differs between precond modes", i)
		}
	}
}
