package kp

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
)

// Additional determinant-pipeline coverage: identities, structure, and the
// relationship between DetOnce and the preconditioner data.

func TestDetKnownStructures(t *testing.T) {
	src := ff.NewSource(301)
	// Identity: det = 1.
	for _, n := range []int{1, 2, 5, 9} {
		id := matrix.Identity[uint64](fp, n)
		d, err := Det[uint64](fp, classical(), id, Params{Src: src, Subset: ff.P31})
		if err != nil {
			t.Fatal(err)
		}
		if d != 1 {
			t.Fatalf("det(I_%d) = %d", n, d)
		}
	}
	// Diagonal: det = product of entries.
	diag := ff.VecFromInt64[uint64](fp, []int64{2, 3, 5, 7})
	dm := matrix.Diagonal[uint64](fp, diag)
	d, err := Det[uint64](fp, classical(), dm, Params{Src: src, Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if d != 2*3*5*7 {
		t.Fatalf("det(diag) = %d, want 210", d)
	}
	// Permutation (single swap): det = −1.
	p := matrix.FromRows[uint64](fp, [][]int64{
		{0, 1, 0}, {1, 0, 0}, {0, 0, 1},
	})
	d, err = Det[uint64](fp, classical(), p, Params{Src: src, Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if d != fp.Neg(1) {
		t.Fatalf("det(swap) = %d, want −1", d)
	}
}

func TestDetMultiplicativity(t *testing.T) {
	src := ff.NewSource(303)
	n := 5
	a := randNonsingular(t, src, n)
	b := randNonsingular(t, src, n)
	da, err := Det[uint64](fp, classical(), a, Params{Src: src, Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Det[uint64](fp, classical(), b, Params{Src: src, Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	dab, err := Det[uint64](fp, classical(), matrix.Mul[uint64](fp, a, b), Params{Src: src, Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if dab != fp.Mul(da, db) {
		t.Fatal("det(AB) != det(A)·det(B) through the KP pipeline")
	}
}

func TestDetOnceAgreesAcrossRandomness(t *testing.T) {
	// The branch-free attempt must give the SAME determinant for different
	// random choices whenever it completes — the quantity is intrinsic.
	src := ff.NewSource(305)
	n := 6
	a := randNonsingular(t, src, n)
	want, _ := matrix.Det[uint64](fp, a)
	successes := 0
	for trial := 0; trial < 8; trial++ {
		rnd := DrawRandomness[uint64](fp, src, n, ff.P31)
		d, err := DetOnce[uint64](fp, classical(), a, rnd)
		if err != nil {
			continue // unlucky draw
		}
		successes++
		if d != want {
			t.Fatalf("trial %d: DetOnce = %d, want %d (wrong value, not a failure!)", trial, d, want)
		}
	}
	if successes == 0 {
		t.Fatal("no successful attempts at |S| = P31 — something is broken")
	}
}

func TestSolveOnceDeterministicGivenRandomness(t *testing.T) {
	// Same randomness ⇒ same output: the pipeline is a function.
	src := ff.NewSource(307)
	n := 5
	a := randNonsingular(t, src, n)
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	rnd := DrawRandomness[uint64](fp, src, n, ff.P31)
	x1, err1 := SolveOnce[uint64](fp, classical(), a, b, rnd)
	x2, err2 := SolveOnce[uint64](fp, classical(), a, b, rnd)
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("nondeterministic failure")
	}
	if err1 == nil && !ff.VecEqual[uint64](fp, x1, x2) {
		t.Fatal("nondeterministic output for fixed randomness")
	}
}

func TestRandomnessShapes(t *testing.T) {
	src := ff.NewSource(309)
	for _, n := range []int{1, 3, 10} {
		rnd := DrawRandomness[uint64](fp, src, n, ff.P31)
		if len(rnd.H) != 2*n-1 || len(rnd.D) != n || len(rnd.U) != n || len(rnd.V) != n {
			t.Fatalf("n=%d: randomness shapes wrong", n)
		}
		if got := len(rnd.Flat()); got != Count(n) {
			t.Fatalf("n=%d: Flat length %d != Count %d", n, got, Count(n))
		}
		for _, d := range rnd.D {
			if d == 0 {
				t.Fatal("zero diagonal entry drawn")
			}
		}
	}
}
