package kp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/wiedemann"
)

// randomNonsingularP62 draws an n×n matrix over F_P62 that is certainly
// non-singular (checked by LU).
func randomNonsingularP62(src *ff.Source, n int) (ff.Fp64, *matrix.Dense[uint64]) {
	f := ff.MustFp64(ff.P62)
	for {
		a := matrix.Random[uint64](f, src, n, n, f.Modulus())
		if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
			return f, a
		}
	}
}

// TestSolveBatchMatchesIndependentSolves is the batch engine's core
// contract: over an exact field the non-singular solution is unique, so
// SolveBatch must be bit-identical to k independent Solve calls — under
// every registered multiplier.
func TestSolveBatchMatchesIndependentSolves(t *testing.T) {
	src := ff.NewSource(71)
	n, k := 9, 5
	f, a := randomNonsingularP62(src, n)
	bm := matrix.Random[uint64](f, src, n, k, f.Modulus())
	for _, name := range matrix.Names() {
		mul, err := matrix.ByName[uint64](name)
		if err != nil {
			t.Fatal(err)
		}
		x, err := SolveBatch[uint64](f, mul, a, bm, Params{Src: ff.NewSource(7)})
		if err != nil {
			t.Fatalf("%s: SolveBatch: %v", name, err)
		}
		if x.Rows != n || x.Cols != k {
			t.Fatalf("%s: shape %dx%d", name, x.Rows, x.Cols)
		}
		for j := 0; j < k; j++ {
			want, err := Solve[uint64](f, mul, a, bm.Col(j), Params{Src: ff.NewSource(7)})
			if err != nil {
				t.Fatalf("%s: Solve col %d: %v", name, j, err)
			}
			for i := 0; i < n; i++ {
				if x.At(i, j) != want[i] {
					t.Fatalf("%s: column %d differs from independent Solve at row %d", name, j, i)
				}
			}
		}
	}
}

func TestSolveBatchShapes(t *testing.T) {
	src := ff.NewSource(73)
	f, a := randomNonsingularP62(src, 4)
	rect := matrix.Random[uint64](f, src, 4, 5, f.Modulus())
	if _, err := SolveBatch[uint64](f, matrix.Classical[uint64]{}, rect, rect, Params{Src: src}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("non-square A: err = %v", err)
	}
	short := matrix.Random[uint64](f, src, 3, 2, f.Modulus())
	if _, err := SolveBatch[uint64](f, matrix.Classical[uint64]{}, a, short, Params{Src: src}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("mismatched B: err = %v", err)
	}
	// k = 0 is a valid empty batch.
	empty := matrix.NewDense[uint64](f, 4, 0)
	x, err := SolveBatch[uint64](f, matrix.Classical[uint64]{}, a, empty, Params{Src: src})
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 4 || x.Cols != 0 {
		t.Fatalf("empty batch shape %dx%d", x.Rows, x.Cols)
	}
}

func TestSolveBatchSingular(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	a := matrix.FromRows[uint64](f, [][]int64{{1, 2}, {2, 4}})
	bm := matrix.FromRows[uint64](f, [][]int64{{1}, {1}})
	_, err := SolveBatch[uint64](f, matrix.Classical[uint64]{}, a, bm, Params{Src: ff.NewSource(5), Retries: 3})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("singular batch: err = %v", err)
	}
}

// TestFactorReuse checks the reusable handle end to end: repeated Solve
// calls agree with the standalone driver, InverseApply against I yields the
// inverse, and Det matches LU.
func TestFactorReuse(t *testing.T) {
	src := ff.NewSource(79)
	n := 8
	f, a := randomNonsingularP62(src, n)
	fa, err := Factor[uint64](f, matrix.Classical[uint64]{}, a, Params{Src: ff.NewSource(11)})
	if err != nil {
		t.Fatal(err)
	}
	if fa.Dim() != n {
		t.Fatalf("Dim = %d", fa.Dim())
	}
	for trial := 0; trial < 3; trial++ {
		b := ff.SampleVec[uint64](f, src, n, f.Modulus())
		x, err := fa.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: ff.NewSource(11)})
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, x, want) {
			t.Fatalf("trial %d: Factorization.Solve differs from Solve", trial)
		}
	}
	if _, err := fa.Solve(make([]uint64, n+1)); !errors.Is(err, ErrBadShape) {
		t.Fatalf("wrong-length b: err = %v", err)
	}
	inv, err := fa.InverseApply(matrix.Identity[uint64](f, n))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Mul[uint64](f, a, inv).Equal(f, matrix.Identity[uint64](f, n)) {
		t.Fatal("InverseApply(I) is not the inverse")
	}
	d, err := fa.Det()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.Det[uint64](f, a)
	if d != want {
		t.Fatalf("Det = %d, want %d", d, want)
	}
}

// TestFactoredSolveSkipsKrylov pins the amortization claim to the span
// record: Factor pays for batch/krylov once, and subsequent Solve calls add
// only batch/backsolve and batch/verify spans.
func TestFactoredSolveSkipsKrylov(t *testing.T) {
	src := ff.NewSource(83)
	n := 7
	f, a := randomNonsingularP62(src, n)
	o := obs.New(0)
	prev := obs.Active()
	obs.SetActive(o)
	defer obs.SetActive(prev)

	fa, err := Factor[uint64](f, matrix.Classical[uint64]{}, a, Params{Src: ff.NewSource(13)})
	if err != nil {
		t.Fatal(err)
	}
	after := o.PhaseTotals()
	krylov := after[obs.PhaseBatchKrylov].Count
	if krylov == 0 {
		t.Fatal("Factor recorded no batch/krylov span")
	}
	back := after[obs.PhaseBatchBacksolve].Count

	for trial := 0; trial < 3; trial++ {
		b := ff.SampleVec[uint64](f, src, n, f.Modulus())
		if _, err := fa.Solve(b); err != nil {
			t.Fatal(err)
		}
	}
	final := o.PhaseTotals()
	if got := final[obs.PhaseBatchKrylov].Count; got != krylov {
		t.Fatalf("Factorization.Solve re-ran Krylov: %d spans, want %d", got, krylov)
	}
	if got := final[obs.PhaseBatchBacksolve].Count; got != back+3 {
		t.Fatalf("backsolve spans %d, want %d", got, back+3)
	}
	if final[obs.PhaseBatchVerify].Count < 3 {
		t.Fatal("Solve calls did not verify")
	}
}

// TestErrorTaxonomy checks that the sentinels match across packages via
// errors.Is — the whole point of hoisting them into internal/errs.
func TestErrorTaxonomy(t *testing.T) {
	if !errors.Is(wiedemann.ErrRetriesExhausted, ErrRetriesExhausted) {
		t.Fatal("wiedemann.ErrRetriesExhausted does not match kp.ErrRetriesExhausted")
	}
	if !errors.Is(matrix.ErrSingular, ErrSingular) {
		t.Fatal("matrix.ErrSingular does not match kp.ErrSingular")
	}
	fp := ff.MustFp64(ff.P31)
	src := ff.NewSource(3)
	a := matrix.Identity[uint64](fp, 3)
	if _, err := Solve[uint64](fp, matrix.Classical[uint64]{}, a, []uint64{1, 2}, Params{Src: src, Subset: ff.P31}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("short b: err = %v", err)
	}
	rect := matrix.Random[uint64](fp, src, 2, 3, ff.P31)
	if _, err := Det[uint64](fp, matrix.Classical[uint64]{}, rect, Params{Src: src, Subset: ff.P31}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("non-square Det: err = %v", err)
	}
	if _, err := Inverse[uint64](fp, matrix.Classical[uint64]{}, rect, Params{Src: src, Subset: ff.P31}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("non-square Inverse: err = %v", err)
	}
	if _, err := Factor[uint64](fp, matrix.Classical[uint64]{}, rect, Params{Src: src, Subset: ff.P31}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("non-square Factor: err = %v", err)
	}
}

// TestContextCancellation checks both halves of the cooperative-cancel
// contract: a pre-cancelled context returns immediately, and a cancel
// landing mid-solve surfaces promptly as context.Canceled.
func TestContextCancellation(t *testing.T) {
	src := ff.NewSource(89)
	f, a := randomNonsingularP62(src, 6)
	b := ff.SampleVec[uint64](f, src, 6, f.Modulus())

	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: src, Ctx: done}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Solve: err = %v", err)
	}
	if _, err := Det[uint64](f, matrix.Classical[uint64]{}, a, Params{Src: src, Ctx: done}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Det: err = %v", err)
	}
	bm := matrix.Random[uint64](f, src, 6, 2, f.Modulus())
	if _, err := SolveBatch[uint64](f, matrix.Classical[uint64]{}, a, bm, Params{Src: src, Ctx: done}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SolveBatch: err = %v", err)
	}
	if _, err := Factor[uint64](f, matrix.Classical[uint64]{}, a, Params{Src: src, Ctx: done}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Factor: err = %v", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel2()
	if _, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: src, Ctx: expired}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v", err)
	}

	// Mid-flight: a solve big enough to outlive the cancel must stop at the
	// next phase boundary rather than run to completion.
	n := 128
	fBig, aBig := randomNonsingularP62(ff.NewSource(97), n)
	bBig := ff.SampleVec[uint64](fBig, ff.NewSource(98), n, fBig.Modulus())
	ctx, cancel3 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel3()
	}()
	start := time.Now()
	_, err := Solve[uint64](fBig, matrix.Classical[uint64]{}, aBig, bBig, Params{Src: ff.NewSource(99), Ctx: ctx})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v", err)
	}
	// err == nil means the solve won the race — legal, but then it must have
	// been fast; a cancelled solve must not have run the full pipeline.
	if errors.Is(err, context.Canceled) && time.Since(start) > 30*time.Second {
		t.Fatal("cancelled solve did not return promptly")
	}
}

// TestParamsDrivers exercises the canonical Params-based entry points —
// Solve, Det, Rank, Inverse, TransposedSolve — on one shared system. (The
// deprecated *Legacy positional wrappers these drivers replaced are gone;
// see the README migration notes.)
func TestParamsDrivers(t *testing.T) {
	fp := ff.MustFp64(ff.P31)
	src := ff.NewSource(101)
	n := 5
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](fp, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](fp, a); !fp.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	p := Params{Src: ff.NewSource(1), Subset: ff.P31}

	x, err := Solve[uint64](fp, matrix.Classical[uint64]{}, a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](fp, a.MulVec(fp, x), b) {
		t.Fatal("Solve wrong")
	}
	d, err := Det[uint64](fp, matrix.Classical[uint64]{}, a, Params{Src: ff.NewSource(1), Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	wd, _ := matrix.Det[uint64](fp, a)
	if d != wd {
		t.Fatalf("Det = %d, want %d", d, wd)
	}
	r, err := Rank[uint64](fp, a, Params{Src: ff.NewSource(1), Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if r != n {
		t.Fatalf("Rank = %d, want %d", r, n)
	}
	inv, err := Inverse[uint64](fp, matrix.Classical[uint64]{}, a, Params{Src: ff.NewSource(1), Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Mul[uint64](fp, a, inv).Equal(fp, matrix.Identity[uint64](fp, n)) {
		t.Fatal("Inverse wrong")
	}
	xt, err := TransposedSolve[uint64](fp, a, b, Params{Src: ff.NewSource(1), Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](fp, a.Transpose().MulVec(fp, xt), b) {
		t.Fatal("TransposedSolve wrong")
	}
}
