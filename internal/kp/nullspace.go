package kp

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/matrix"
)

// §5 extensions: nullspace basis and singular systems, via the
// Schur-complement construction spelled out at the end of the paper: for
// random non-singular U, V with Â = U·A·V having non-singular leading
// principal r×r block Â_r (r = rank A), partition Â = [[Â_r, B], [C, D]];
// then the right null space of A is spanned by the columns of
//
//	V · ( −Â_r⁻¹·B )
//	    (  I_{n−r} )
//
// because the Schur complement D − C·Â_r⁻¹·B vanishes at rank r.

// Nullspace returns a basis (as columns of an n×(n−r) matrix) of the right
// null space of a square matrix, verified so the result is always correct
// (Las Vegas). A non-singular matrix yields a basis with zero columns.
func Nullspace[E any](f ff.Field[E], a *matrix.Dense[E], p Params) (*matrix.Dense[E], error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("kp: Nullspace needs a square matrix (got %d×%d): %w", a.Rows, a.Cols, ErrBadShape)
	}
	p = fill(f, p)
	r, err := Rank(f, a, p)
	if err != nil {
		return nil, err
	}
	if r == n {
		return matrix.NewDense(f, n, 0), nil
	}
	for attempt := 0; attempt < p.Retries; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			return nil, err
		}
		u, err := randomNonsingular(f, p.Src, n, p.Subset)
		if err != nil {
			return nil, err
		}
		v, err := randomNonsingular(f, p.Src, n, p.Subset)
		if err != nil {
			return nil, err
		}
		ahat := matrix.Mul(f, matrix.Mul(f, u, a), v)
		basis, err := nullspaceFromHat(f, ahat, v, r)
		if err != nil {
			continue // leading block singular: unlucky randomization
		}
		if matrix.Mul(f, a, basis).IsZero(f) {
			return basis, nil
		}
	}
	return nil, ErrRetriesExhausted
}

func nullspaceFromHat[E any](f ff.Field[E], ahat, v *matrix.Dense[E], r int) (*matrix.Dense[E], error) {
	n := ahat.Rows
	if r == 0 {
		// A = 0: the identity spans the null space (V·I = V works too, but
		// the identity is canonical).
		return matrix.Identity(f, n), nil
	}
	ar := ahat.Leading(r)
	bblk := ahat.Submatrix(0, r, r, n)
	lu, err := matrix.Factor(f, ar)
	if err != nil {
		return nil, err
	}
	if lu.Rank < r {
		return nil, matrix.ErrSingular
	}
	// X = Â_r⁻¹·B, column by column.
	x := matrix.NewDense(f, r, n-r)
	for j := 0; j < n-r; j++ {
		col, err := lu.Solve(f, bblk.Col(j))
		if err != nil {
			return nil, err
		}
		for i := 0; i < r; i++ {
			x.Set(i, j, col[i])
		}
	}
	// E = [−X; I_{n−r}]; basis = V·E.
	e := matrix.NewDense(f, n, n-r)
	for i := 0; i < r; i++ {
		for j := 0; j < n-r; j++ {
			e.Set(i, j, f.Neg(x.At(i, j)))
		}
	}
	for j := 0; j < n-r; j++ {
		e.Set(r+j, j, f.One())
	}
	return matrix.Mul(f, v, e), nil
}

// SolveSingular returns one solution of A·x = b for a (possibly singular)
// square system, or ErrInconsistent. With Â = U·A·V and c = U·b, the
// candidate y = (Â_r⁻¹·c_{1..r}, 0, …, 0) solves Â·y = c exactly when the
// system is consistent; x = V·y. The result is verified, so it is always
// correct when returned (Las Vegas).
func SolveSingular[E any](f ff.Field[E], a *matrix.Dense[E], b []E, p Params) ([]E, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("kp: SolveSingular needs a square system with a matching right-hand side (A is %d×%d, b has %d entries): %w",
			a.Rows, a.Cols, len(b), ErrBadShape)
	}
	p = fill(f, p)
	r, err := Rank(f, a, p)
	if err != nil {
		return nil, err
	}
	if r == 0 {
		if ff.VecIsZero(f, b) {
			return ff.VecZero(f, n), nil
		}
		return nil, ErrInconsistent
	}
	sawCandidate := false
	for attempt := 0; attempt < p.Retries; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			return nil, err
		}
		u, err := randomNonsingular(f, p.Src, n, p.Subset)
		if err != nil {
			return nil, err
		}
		v, err := randomNonsingular(f, p.Src, n, p.Subset)
		if err != nil {
			return nil, err
		}
		ahat := matrix.Mul(f, matrix.Mul(f, u, a), v)
		ar := ahat.Leading(r)
		lu, err := matrix.Factor(f, ar)
		if err != nil || lu.Rank < r {
			continue
		}
		c := u.MulVec(f, b)
		top, err := lu.Solve(f, c[:r])
		if err != nil {
			continue
		}
		y := ff.VecZero(f, n)
		copy(y, top)
		x := v.MulVec(f, y)
		sawCandidate = true
		if ff.VecEqual(f, a.MulVec(f, x), b) {
			return x, nil
		}
	}
	if sawCandidate {
		// Candidates formed but never verified: with overwhelming
		// probability the system is inconsistent (a consistent system
		// verifies whenever the leading block is non-singular).
		return nil, ErrInconsistent
	}
	return nil, ErrRetriesExhausted
}
