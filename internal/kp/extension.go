package kp

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/ff"
	"repro/internal/matrix"
)

// The paper's small-field device (§2): "For Galois fields K with
// card(K) < 3n², the algorithm is performed in an algebraic extension L
// over K, so that the failure probability can be bounded away from 0."
// The solution of a non-singular system over K is unique, hence lies in K
// even when computed in L ⊇ K, so lifting, solving, and projecting back is
// sound; likewise det(A) ∈ K.

// ErrNotInBaseField is returned if a projected result has non-zero
// higher-degree coefficients — impossible for correct answers, so it flags
// an internal inconsistency rather than bad luck.
var ErrNotInBaseField = errors.New("kp: extension-field result does not lie in the base field")

// ExtensionDegree returns the degree k such that p^k ≥ 3n²/eps, the subset
// size that bounds the per-attempt failure probability by eps.
func ExtensionDegree(p uint64, n int, eps float64) int {
	if eps <= 0 || eps > 1 {
		eps = 0.5
	}
	need := new(big.Int).SetUint64(uint64(3*float64(n)*float64(n)/eps) + 1)
	pk := new(big.Int).SetUint64(p)
	pb := new(big.Int).SetUint64(p)
	k := 1
	for pk.Cmp(need) < 0 {
		pk.Mul(pk, pb)
		k++
	}
	return k
}

// SolveViaExtension solves A·x = b over a small prime field F_p (with
// p > n, Theorem 4's characteristic hypothesis, but p too small for the
// 3n²/|S| bound) by lifting the system into F_{p^k}, running the Theorem 4
// solver there with the full random-subset budget, and projecting the
// (necessarily base-field) solution back down.
func SolveViaExtension(base ff.Fp64, a *matrix.Dense[uint64], b []uint64, src *ff.Source, eps float64, retries int) ([]uint64, error) {
	n := a.Rows
	if !ff.CharacteristicExceeds[uint64](base, n) {
		return nil, fmt.Errorf("kp: characteristic %d ≤ n = %d even in an extension: %w", base.Modulus(), n, ErrCharacteristicTooSmall)
	}
	ext, subset, err := buildExtension(base, n, eps, src)
	if err != nil {
		return nil, err
	}
	// Lift the system: base elements embed as constant polynomials.
	la := liftMatrix(ext, a)
	lb := make([][]uint64, n)
	for i, v := range b {
		lv := ext.Zero()
		lv[0] = v
		lb[i] = lv
	}
	lx, err := Solve[[]uint64](ext, matrix.Classical[[]uint64]{}, la, lb, Params{Src: src, Subset: subset, Retries: retries})
	if err != nil {
		return nil, err
	}
	return projectVec(ext, lx)
}

// DetViaExtension computes det(A) over a small prime field by the same
// lifting (the determinant of a base-field matrix lies in the base field).
func DetViaExtension(base ff.Fp64, a *matrix.Dense[uint64], src *ff.Source, eps float64, retries int) (uint64, error) {
	n := a.Rows
	if !ff.CharacteristicExceeds[uint64](base, n) {
		return 0, fmt.Errorf("kp: characteristic %d ≤ n = %d even in an extension: %w", base.Modulus(), n, ErrCharacteristicTooSmall)
	}
	ext, subset, err := buildExtension(base, n, eps, src)
	if err != nil {
		return 0, err
	}
	la := liftMatrix(ext, a)
	ld, err := Det[[]uint64](ext, matrix.Classical[[]uint64]{}, la, Params{Src: src, Subset: subset, Retries: retries})
	if err != nil {
		return 0, err
	}
	return projectElem(ext, ld)
}

func buildExtension(base ff.Fp64, n int, eps float64, src *ff.Source) (ff.FpExt, uint64, error) {
	k := ExtensionDegree(base.Modulus(), n, eps)
	if k < 2 {
		k = 2 // a proper extension: the caller chose this path because |K| is small
	}
	mod, err := ff.FindIrreducible(base, k, src)
	if err != nil {
		return ff.FpExt{}, 0, err
	}
	ext, err := ff.NewFpExt(base, mod)
	if err != nil {
		return ff.FpExt{}, 0, err
	}
	// Sampling subset: the whole of F_{p^k} up to the 2⁶⁴ enumeration cap.
	card := ext.Cardinality()
	subset := uint64(1) << 62
	if card.IsUint64() {
		subset = card.Uint64()
	}
	return ext, subset, nil
}

func liftMatrix(ext ff.FpExt, a *matrix.Dense[uint64]) *matrix.Dense[[]uint64] {
	out := &matrix.Dense[[]uint64]{Rows: a.Rows, Cols: a.Cols, Data: make([][]uint64, len(a.Data))}
	for i, v := range a.Data {
		lv := ext.Zero()
		lv[0] = v
		out.Data[i] = lv
	}
	return out
}

func projectVec(ext ff.FpExt, xs [][]uint64) ([]uint64, error) {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		v, err := projectElem(ext, x)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func projectElem(ext ff.FpExt, x []uint64) (uint64, error) {
	for j := 1; j < len(x); j++ {
		if x[j] != 0 {
			return 0, ErrNotInBaseField
		}
	}
	if len(x) == 0 {
		return 0, nil
	}
	return x[0], nil
}
