package ff

// ConcurrentSafe marks field implementations whose arithmetic methods may be
// called from many goroutines at once. The plain value fields (Fp64, FpBig,
// FpExt, Rat) are safe: their receivers are read-only after construction.
// Stateful implementations — most importantly the circuit Builder, which
// records every operation into one shared node list — are not, and the
// parallel matrix kernels fall back to their serial forms over them.
type ConcurrentSafe interface {
	// ConcurrentSafe reports whether arithmetic on this field value may be
	// invoked concurrently.
	ConcurrentSafe() bool
}

// IsConcurrentSafe reports whether f's operations are safe to call from
// multiple goroutines. Fields that do not implement ConcurrentSafe are
// conservatively treated as unsafe.
func IsConcurrentSafe[E any](f Field[E]) bool {
	c, ok := any(f).(ConcurrentSafe)
	return ok && c.ConcurrentSafe()
}

// ConcurrentSafe reports true: Fp64 is a read-only value.
func (f Fp64) ConcurrentSafe() bool { return true }

// ConcurrentSafe reports true: the modulus is never mutated after creation.
func (f FpBig) ConcurrentSafe() bool { return true }

// ConcurrentSafe reports true: the reduction polynomial is read-only.
func (f FpExt) ConcurrentSafe() bool { return true }

// ConcurrentSafe reports true: Rat is stateless.
func (f Rat) ConcurrentSafe() bool { return true }

// ConcurrentSafe reports whether the wrapped field is itself safe; the
// counters are atomic, so Counting adds no hazard of its own.
func (c *Counting[E]) ConcurrentSafe() bool { return IsConcurrentSafe(c.f) }
