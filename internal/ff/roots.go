package ff

// Support for fast (FFT/NTT) polynomial multiplication, the paper's
// Cantor–Kaltofen substrate: fields that contain 2-power roots of unity
// advertise them through RootsOfUnity, and the polynomial layer switches to
// an O(n log n) evaluation–interpolation product when they are available.

// RootsOfUnity is implemented by fields containing primitive 2-power roots
// of unity. RootOfUnity returns a primitive (2^log2n)-th root, or ok=false
// when the field has none of that order.
type RootsOfUnity[E any] interface {
	RootOfUnity(log2n int) (root E, ok bool)
}

// Int64Roots is the representation-level form used by the circuit builder:
// the root as the canonical FromInt64 preimage. Word-sized prime fields
// implement it (every element is a small integer), letting traced circuits
// embed the same roots as constants.
type Int64Roots interface {
	RootOfUnityInt64(log2n int) (root int64, ok bool)
}

// PNTT62 is a 62-bit FFT-friendly prime, 16291·2⁴⁸ + 1: its multiplicative
// group contains primitive 2^k-th roots of unity for every k ≤ 48, enabling
// NTT-based polynomial products for all feasible sizes. It is the default
// field of the circuit-size experiments.
const PNTT62 uint64 = 4585508845593296897

// twoAdicity returns v with p−1 = odd·2^v.
func (f Fp64) twoAdicity() int {
	v := 0
	for m := f.p - 1; m%2 == 0; m /= 2 {
		v++
	}
	return v
}

// RootOfUnity returns a primitive 2^log2n-th root of unity in F_p, if the
// group order admits one (p ≡ 1 mod 2^log2n). It locates a quadratic
// non-residue g by Euler's criterion and returns g^((p−1)/2^log2n), which
// has exact order 2^log2n.
func (f Fp64) RootOfUnity(log2n int) (uint64, bool) {
	if log2n == 0 {
		return f.One(), true
	}
	v := f.twoAdicity()
	if log2n > v {
		return 0, false
	}
	// Find a non-residue: g^((p−1)/2) = −1.
	var g uint64
	for cand := uint64(2); ; cand++ {
		if f.Pow(cand, (f.p-1)/2) == f.p-1 {
			g = cand
			break
		}
	}
	// ω = g^((p−1)/2^log2n) has order exactly 2^log2n: its 2^{log2n−1}
	// power is g^((p−1)/2) = −1 ≠ 1.
	return f.Pow(g, (f.p-1)>>uint(log2n)), true
}

// RootOfUnityInt64 implements Int64Roots for word-sized prime fields.
func (f Fp64) RootOfUnityInt64(log2n int) (int64, bool) {
	r, ok := f.RootOfUnity(log2n)
	if !ok {
		return 0, false
	}
	return int64(r), true // p < 2⁶³, so every residue fits in int64
}

var (
	_ RootsOfUnity[uint64] = Fp64{}
	_ Int64Roots           = Fp64{}
)
