package ff

import (
	"math/big"
	"testing"
	"testing/quick"
)

// axioms checks the field axioms on a batch of pseudo-random elements. It
// is the shared property test applied to every field implementation.
func axioms[E any](t *testing.T, f Field[E], src *Source, subset uint64, trials int) {
	t.Helper()
	zero, one := f.Zero(), f.One()

	if !f.IsZero(zero) {
		t.Fatalf("Zero() is not zero")
	}
	if f.IsZero(one) {
		t.Fatalf("One() is zero")
	}

	for i := 0; i < trials; i++ {
		a := Sample(f, src, subset)
		b := Sample(f, src, subset)
		c := Sample(f, src, subset)

		// Commutativity.
		if !f.Equal(f.Add(a, b), f.Add(b, a)) {
			t.Fatalf("a+b != b+a for a=%s b=%s", f.String(a), f.String(b))
		}
		if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
			t.Fatalf("ab != ba for a=%s b=%s", f.String(a), f.String(b))
		}
		// Associativity.
		if !f.Equal(f.Add(f.Add(a, b), c), f.Add(a, f.Add(b, c))) {
			t.Fatalf("(a+b)+c != a+(b+c)")
		}
		if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
			t.Fatalf("(ab)c != a(bc)")
		}
		// Identities.
		if !f.Equal(f.Add(a, zero), a) {
			t.Fatalf("a+0 != a")
		}
		if !f.Equal(f.Mul(a, one), a) {
			t.Fatalf("a·1 != a")
		}
		// Inverses.
		if !f.IsZero(f.Add(a, f.Neg(a))) {
			t.Fatalf("a + (−a) != 0")
		}
		if !f.IsZero(f.Sub(a, a)) {
			t.Fatalf("a − a != 0")
		}
		// Distributivity.
		lhs := f.Mul(a, f.Add(b, c))
		rhs := f.Add(f.Mul(a, b), f.Mul(a, c))
		if !f.Equal(lhs, rhs) {
			t.Fatalf("a(b+c) != ab+ac")
		}
		// Multiplicative inverse.
		if !f.IsZero(a) {
			ai, err := f.Inv(a)
			if err != nil {
				t.Fatalf("Inv(%s): %v", f.String(a), err)
			}
			if !f.Equal(f.Mul(a, ai), one) {
				t.Fatalf("a·a⁻¹ != 1 for a=%s", f.String(a))
			}
			q, err := f.Div(b, a)
			if err != nil {
				t.Fatalf("Div: %v", err)
			}
			if !f.Equal(f.Mul(q, a), b) {
				t.Fatalf("(b/a)·a != b")
			}
		}
	}

	// Division by zero must be reported, not computed.
	if _, err := f.Inv(zero); err != ErrDivisionByZero {
		t.Fatalf("Inv(0) = %v, want ErrDivisionByZero", err)
	}
	if _, err := f.Div(one, zero); err != ErrDivisionByZero {
		t.Fatalf("Div(1,0) = %v, want ErrDivisionByZero", err)
	}
}

func TestFp64Axioms(t *testing.T) {
	for _, p := range []uint64{2, 3, 5, 101, P17, P31, P62} {
		f := MustFp64(p)
		subset := p
		if subset > 1<<20 {
			subset = 1 << 20
		}
		axioms[uint64](t, f, NewSource(p), subset, 200)
	}
}

func TestFpBigAxioms(t *testing.T) {
	p, _ := new(big.Int).SetString("170141183460469231731687303715884105727", 10) // 2¹²⁷−1
	f := MustFpBig(p)
	axioms[*big.Int](t, f, NewSource(7), 1<<30, 60)
}

func TestRatAxioms(t *testing.T) {
	axioms[*big.Rat](t, NewRat(), NewSource(9), 1<<16, 60)
}

func TestFpExtAxioms(t *testing.T) {
	src := NewSource(11)
	for _, tc := range []struct {
		p uint64
		k int
	}{{2, 8}, {3, 4}, {101, 3}, {P17, 2}} {
		base := MustFp64(tc.p)
		mod, err := FindIrreducible(base, tc.k, src)
		if err != nil {
			t.Fatalf("FindIrreducible(p=%d,k=%d): %v", tc.p, tc.k, err)
		}
		f, err := NewFpExt(base, mod)
		if err != nil {
			t.Fatalf("NewFpExt: %v", err)
		}
		axioms[[]uint64](t, f, src, 1<<16, 100)
	}
}

func TestGF2k(t *testing.T) {
	f, err := NewGF2k(16, NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Cardinality(); got.Cmp(big.NewInt(1<<16)) != 0 {
		t.Fatalf("Cardinality = %v, want 2^16", got)
	}
	if got := f.Characteristic(); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("Characteristic = %v, want 2", got)
	}
	axioms[[]uint64](t, f, NewSource(17), 1<<16, 150)
}

func TestFp64QuickProperties(t *testing.T) {
	f := MustFp64(P62)
	// Frobenius-free sanity: (a+b)² = a² + 2ab + b².
	prop := func(a, b uint64) bool {
		x, y := f.Elem(a), f.Elem(b)
		s := f.Add(x, y)
		lhs := f.Mul(s, s)
		rhs := f.Add(f.Add(f.Mul(x, x), f.Mul(y, y)),
			f.Mul(f.FromInt64(2), f.Mul(x, y)))
		return f.Equal(lhs, rhs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFp64Pow(t *testing.T) {
	f := MustFp64(P31)
	src := NewSource(3)
	for i := 0; i < 50; i++ {
		a := SampleNonZero(f, src, P31)
		// Fermat: a^(p−1) = 1.
		if got := f.Pow(a, P31-1); got != 1 {
			t.Fatalf("a^(p-1) = %d, want 1", got)
		}
		// a^p = a.
		if got := f.Pow(a, P31); got != a {
			t.Fatalf("a^p = %d, want %d", got, a)
		}
	}
	if got := f.Pow(0, 0); got != 1 {
		t.Fatalf("0^0 = %d, want 1 (empty product)", got)
	}
}

func TestElemInjective(t *testing.T) {
	f := MustFp64(101)
	seen := map[uint64]bool{}
	for i := uint64(0); i < 101; i++ {
		e := f.Elem(i)
		if seen[e] {
			t.Fatalf("Elem not injective at %d", i)
		}
		seen[e] = true
	}

	ext, err := NewGF2k(10, NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	seenExt := map[string]bool{}
	for i := uint64(0); i < 1024; i++ {
		key := ext.String(ext.Elem(i))
		if seenExt[key] {
			t.Fatalf("FpExt.Elem not injective at %d", i)
		}
		seenExt[key] = true
	}
}

func TestNewFp64Rejects(t *testing.T) {
	for _, p := range []uint64{0, 1, 4, 100, 1 << 63} {
		if _, err := NewFp64(p); err == nil {
			t.Fatalf("NewFp64(%d) accepted a bad modulus", p)
		}
	}
}

func TestFromInt64Negative(t *testing.T) {
	f := MustFp64(101)
	if got := f.FromInt64(-1); got != 100 {
		t.Fatalf("FromInt64(-1) = %d, want 100", got)
	}
	if got := f.FromInt64(-202); got != 0 {
		t.Fatalf("FromInt64(-202) = %d, want 0", got)
	}
}

func TestCharacteristicExceeds(t *testing.T) {
	if !CharacteristicExceeds[*big.Rat](NewRat(), 1<<30) {
		t.Fatal("char 0 must exceed any n")
	}
	f := MustFp64(101)
	if !CharacteristicExceeds[uint64](f, 100) {
		t.Fatal("101 > 100 expected")
	}
	if CharacteristicExceeds[uint64](f, 101) {
		t.Fatal("101 > 101 must be false")
	}
}

func TestSubsetSize(t *testing.T) {
	f := MustFp64(P62)
	if s := SubsetSize[uint64](f, 10, 0.01); s < 30000 {
		t.Fatalf("SubsetSize too small: %d", s)
	}
	small := MustFp64(101)
	if s := SubsetSize[uint64](small, 100, 0.5); s != 0 {
		t.Fatalf("expected 0 (field too small), got %d", s)
	}
}

func TestFrobeniusEndomorphism(t *testing.T) {
	// In characteristic p, x ↦ x^p is a ring homomorphism:
	// (a+b)^p = a^p + b^p (the "freshman's dream").
	src := NewSource(91)
	for _, p := range []uint64{2, 3, 5, 13} {
		base := MustFp64(p)
		mod, err := FindIrreducible(base, 3, src)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFpExt(base, mod)
		if err != nil {
			t.Fatal(err)
		}
		pow := func(a []uint64) []uint64 {
			r := f.One()
			for i := uint64(0); i < p; i++ {
				r = f.Mul(r, a)
			}
			return r
		}
		for trial := 0; trial < 40; trial++ {
			a := Sample[[]uint64](f, src, 1<<16)
			b := Sample[[]uint64](f, src, 1<<16)
			lhs := pow(f.Add(a, b))
			rhs := f.Add(pow(a), pow(b))
			if !f.Equal(lhs, rhs) {
				t.Fatalf("char %d: Frobenius not additive", p)
			}
		}
	}
}

func TestFpExtSubfieldEmbedding(t *testing.T) {
	// The prime subfield embeds homomorphically: operations on constants
	// commute with FromInt64.
	src := NewSource(93)
	base := MustFp64(101)
	mod, err := FindIrreducible(base, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFpExt(base, mod)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(-5); a < 5; a++ {
		for b := int64(1); b < 7; b++ {
			sum := f.Add(f.FromInt64(a), f.FromInt64(b))
			if !f.Equal(sum, f.FromInt64(a+b)) {
				t.Fatal("embedding not additive")
			}
			prod := f.Mul(f.FromInt64(a), f.FromInt64(b))
			if !f.Equal(prod, f.FromInt64(a*b)) {
				t.Fatal("embedding not multiplicative")
			}
		}
	}
}
