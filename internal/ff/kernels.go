package ff

import "math/bits"

// Fused, allocation-free vector kernels — the fast-arithmetic backend the
// dense hot paths dispatch to. A field that implements Kernels promises
// that the primitives compute exactly the same field elements as the
// corresponding per-element loops of Add/Mul, only faster: the matrix,
// sequence and polynomial layers type-assert for the interface and fall
// back to the generic loops otherwise, so abstract fields (FpBig, FpExt,
// Rat) and the instrumented wrappers (Counting, the circuit Builder) keep
// their exact per-operation semantics — op counts and traced circuit shape
// are unchanged because those wrappers simply do not implement Kernels.
type Kernels[E any] interface {
	// MulAddVec sets dst[i] = dst[i] + s·a[i] for all i; len(dst) must
	// equal len(a).
	MulAddVec(dst []E, s E, a []E)
	// DotInto returns ⟨a, b⟩ without allocating; slices must have equal
	// length.
	DotInto(a, b []E) E
	// ScaleInto sets dst[i] = s·a[i]; dst may alias a.
	ScaleInto(dst []E, s E, a []E)
	// AddInto sets dst[i] = dst[i] + a[i].
	AddInto(dst []E, a []E)
	// SubInto sets dst[i] = dst[i] − a[i].
	SubInto(dst []E, a []E)
}

// KernelsOf returns the fused kernels of f, if it provides them.
func KernelsOf[E any](f Field[E]) (Kernels[E], bool) {
	k, ok := any(f).(Kernels[E])
	return k, ok
}

// VecScaleInto sets dst[i] = s·a[i] (dst may alias a), through the fused
// kernels when the field has them. The in-place variant of VecScale.
func VecScaleInto[E any](f Field[E], dst []E, s E, a []E) {
	mustSameLen(len(dst), len(a))
	if k, ok := KernelsOf(f); ok {
		k.ScaleInto(dst, s, a)
		return
	}
	for i := range a {
		dst[i] = f.Mul(s, a[i])
	}
}

// VecAddInto sets dst[i] = dst[i] + a[i]. The in-place variant of VecAdd.
func VecAddInto[E any](f Field[E], dst, a []E) {
	mustSameLen(len(dst), len(a))
	if k, ok := KernelsOf(f); ok {
		k.AddInto(dst, a)
		return
	}
	for i := range a {
		dst[i] = f.Add(dst[i], a[i])
	}
}

// VecSubInto sets dst[i] = dst[i] − a[i]. The in-place variant of VecSub.
func VecSubInto[E any](f Field[E], dst, a []E) {
	mustSameLen(len(dst), len(a))
	if k, ok := KernelsOf(f); ok {
		k.SubInto(dst, a)
		return
	}
	for i := range a {
		dst[i] = f.Sub(dst[i], a[i])
	}
}

// VecMulAddInto sets dst[i] = dst[i] + s·a[i] — the fused saxpy primitive
// of the dense kernels.
func VecMulAddInto[E any](f Field[E], dst []E, s E, a []E) {
	mustSameLen(len(dst), len(a))
	if k, ok := KernelsOf(f); ok {
		k.MulAddVec(dst, s, a)
		return
	}
	for i := range a {
		dst[i] = f.Add(dst[i], f.Mul(s, a[i]))
	}
}

// DotFused returns ⟨a, b⟩ through the fused kernels when available. The
// fallback is the balanced-tree Dot, so traced circuits keep their
// O(log n) accumulation depth and counted fields their exact op totals;
// only concrete kernel-bearing fields take the sequential fused path (a
// field is commutative-associative, so the value is identical).
func DotFused[E any](f Field[E], a, b []E) E {
	if k, ok := KernelsOf(f); ok {
		mustSameLen(len(a), len(b))
		return k.DotInto(a, b)
	}
	return Dot(f, a, b)
}

// --- Fp64 implementation -------------------------------------------------

// dotLazyChunk is the lazy-reduction window of the Fp64 dot kernel: for
// p < 2⁶² each product is < 2¹²⁴, so a 128-bit accumulator absorbs up to
// 2¹²⁸⁻¹²⁴ = 16 products before it can overflow; the kernel reduces once
// per window instead of once per element.
const dotLazyChunk = 16

// lazyDotMax is the exclusive modulus bound for the lazy window above.
const lazyDotMax = uint64(1) << 62

// MulAddVec sets dst[i] += s·a[i]. The scalar is converted to Montgomery
// form once, so each element costs a single wide multiply plus one REDC —
// no divisions anywhere in the loop.
func (f Fp64) MulAddVec(dst []uint64, s uint64, a []uint64) {
	mustSameLen(len(dst), len(a))
	if f.pInv == 0 {
		for i := range a {
			dst[i] = f.Add(dst[i], s&a[i])
		}
		return
	}
	sm := f.toMont(s)
	p := f.p
	for i, ai := range a {
		hi, lo := bits.Mul64(sm, ai)
		d := dst[i] + f.redc(hi, lo) // both < p < 2⁶³: no overflow
		if d >= p {
			d -= p
		}
		dst[i] = d
	}
}

// ScaleInto sets dst[i] = s·a[i] at one REDC per element.
func (f Fp64) ScaleInto(dst []uint64, s uint64, a []uint64) {
	mustSameLen(len(dst), len(a))
	if f.pInv == 0 {
		for i := range a {
			dst[i] = s & a[i]
		}
		return
	}
	sm := f.toMont(s)
	for i, ai := range a {
		hi, lo := bits.Mul64(sm, ai)
		dst[i] = f.redc(hi, lo)
	}
}

// AddInto sets dst[i] += a[i].
func (f Fp64) AddInto(dst []uint64, a []uint64) {
	mustSameLen(len(dst), len(a))
	p := f.p
	for i, ai := range a {
		d := dst[i] + ai
		if d >= p {
			d -= p
		}
		dst[i] = d
	}
}

// SubInto sets dst[i] −= a[i].
func (f Fp64) SubInto(dst []uint64, a []uint64) {
	mustSameLen(len(dst), len(a))
	p := f.p
	for i, ai := range a {
		d := dst[i] - ai
		if dst[i] < ai {
			d += p
		}
		dst[i] = d
	}
}

// DotInto returns ⟨a, b⟩. For p < 2⁶² it accumulates raw 128-bit products
// and reduces once per dotLazyChunk window (the reduction itself is one
// word division amortized over the window plus one REDC); the partial sums
// carry an R⁻¹ factor that a single final Montgomery fixup removes. Odd
// p ≥ 2⁶² reduces per element with REDC, still division-free; F_2 runs the
// generic loop.
func (f Fp64) DotInto(a, b []uint64) uint64 {
	mustSameLen(len(a), len(b))
	if f.pInv == 0 {
		var d uint64
		for i := range a {
			d = f.Add(d, a[i]&b[i])
		}
		return d
	}
	p := f.p
	var acc uint64 // Σ x_c·R⁻¹ mod p over the windows
	if f.p < lazyDotMax {
		for len(a) > 0 {
			n := min(len(a), dotLazyChunk)
			var hi, lo, c uint64
			for j := 0; j < n; j++ {
				ph, pl := bits.Mul64(a[j], b[j])
				lo, c = bits.Add64(lo, pl, 0)
				hi += ph + c
			}
			// hi is arbitrary (< 2⁶⁴): fold it into [0, p) first so the
			// REDC quotient stays in range, then reduce the window.
			t := f.redc(hi%p, lo)
			acc += t
			if acc >= p {
				acc -= p
			}
			a, b = a[n:], b[n:]
		}
	} else {
		for i := range a {
			acc += f.mulRedc(a[i], b[i])
			if acc >= p {
				acc -= p
			}
		}
	}
	// acc ≡ ⟨a,b⟩·R⁻¹; one multiplication by R² (with its own R⁻¹) fixes it.
	return f.mulRedc(acc, f.r2)
}

var _ Kernels[uint64] = Fp64{}
