package ff

import (
	"errors"
	"math/big"
	"testing"
)

// M61 = 2⁶¹ − 1 is prime but maximally NTT-hostile: 2⁶¹ − 2 = 2·(2⁶⁰ − 1),
// so the unit group's 2-adicity is 1 and no transform of length ≥ 4 exists.
const m61 uint64 = 2305843009213693951

// TestNTTSupportUnfriendlyPrime is the regression test for the construction
// contract: a prime without a large-enough 2-adic root must surface the
// typed ErrNoRootOfUnity — never a panic — so callers can fall back to the
// schoolbook path.
func TestNTTSupportUnfriendlyPrime(t *testing.T) {
	f := MustFp64(m61)
	if v := f.twoAdicity(); v != 1 {
		t.Fatalf("twoAdicity(M61) = %d, want 1", v)
	}
	if _, err := NTTSupport[uint64](f, 2); !errors.Is(err, ErrNoRootOfUnity) {
		t.Fatalf("NTTSupport(M61, 4-point) error = %v, want ErrNoRootOfUnity", err)
	}
	// The largest supported order still works.
	root, err := NTTSupport[uint64](f, 1)
	if err != nil {
		t.Fatalf("NTTSupport(M61, 2-point): %v", err)
	}
	if f.Mul(root, root) != f.One() || root == f.One() {
		t.Fatalf("root %d is not a primitive square root of unity", root)
	}
}

// TestNTTSupportP2Sentinel: the p = 2 sentinel has no REDC constants and no
// non-trivial roots; both failure modes must be typed errors.
func TestNTTSupportP2Sentinel(t *testing.T) {
	f := MustFp64(2)
	if _, err := NTTSupport[uint64](f, 1); !errors.Is(err, ErrNoRootOfUnity) {
		t.Fatalf("NTTSupport(F_2, 2-point) error = %v, want ErrNoRootOfUnity", err)
	}
	// Even the trivial 1-point transform is refused: the fused kernel
	// cannot run without an odd modulus, and the probe must report that
	// instead of panicking.
	if _, err := NTTSupport[uint64](f, 0); !errors.Is(err, ErrNoNTTKernel) {
		t.Fatalf("NTTSupport(F_2, 1-point) error = %v, want ErrNoNTTKernel", err)
	}
	// The in-place kernel itself keeps its boolean contract.
	if f.NTTInPlace([]uint64{0, 1}, 1, 1) {
		t.Fatal("NTTInPlace over F_2 reported success")
	}
}

// TestNTTSupportWrapperField: fields without the fused kernel (FpBig) are a
// typed ErrNoNTTKernel, the cue for the generic path.
func TestNTTSupportWrapperField(t *testing.T) {
	f, err := NewFpBig(new(big.Int).SetUint64(PNTT62))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NTTSupport(f, 3); !errors.Is(err, ErrNoNTTKernel) {
		t.Fatalf("NTTSupport(FpBig) error = %v, want ErrNoNTTKernel", err)
	}
}

// TestNTTTwiddleCacheStability: the cached-table transform must agree with
// itself across calls (first call builds, second reads the cache) and
// round-trip through the inverse transform.
func TestNTTTwiddleCacheStability(t *testing.T) {
	f := MustFp64(PNTT62)
	const log2n = 6
	root, err := NTTSupport[uint64](f, log2n)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << log2n
	src := NewSource(7)
	orig := SampleVec[uint64](f, src, n, f.Modulus())

	a := append([]uint64(nil), orig...)
	b := append([]uint64(nil), orig...)
	if !f.NTTInPlace(a, root, log2n) || !f.NTTInPlace(b, root, log2n) {
		t.Fatal("fused transform unexpectedly unavailable")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transform diverged between cold and cached calls at %d: %d vs %d", i, a[i], b[i])
		}
	}
	rootInv, err := f.Inv(root)
	if err != nil {
		t.Fatal(err)
	}
	if !f.NTTInPlace(a, rootInv, log2n) {
		t.Fatal("inverse transform unavailable")
	}
	nInv, err := f.Inv(f.FromInt64(int64(n)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if f.Mul(a[i], nInv) != orig[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}
