package ff

import (
	"errors"
	"fmt"
	"sync"
)

// Per-kernel twiddle caching and NTT capability probing. The fused
// transform of nttkernel.go used to rebuild its stage-root chain and
// twiddle table on every call; the structured-matrix fast path applies the
// same transform thousands of times per solve (twice per black-box
// product), so the tables are hoisted into a process-wide cache keyed by
// (modulus, root, size). Entries are immutable once built, so lock-free
// reads through sync.Map are safe and the hot path pays one map load.

// ErrNoRootOfUnity reports a field whose multiplicative group has no
// primitive 2-power root of unity of the required order — a prime p with
// p − 1 insufficiently divisible by 2 (including the p = 2 sentinel). It is
// a typed sentinel so callers can fall back to schoolbook arithmetic with
// errors.Is instead of recovering a panic.
var ErrNoRootOfUnity = errors.New("ff: field has no primitive 2-power root of unity of the required order")

// ErrNoNTTKernel reports a field backend without a fused in-place
// transform (ff.NTTKernel): wrapper fields, big-integer fields, and the
// p = 2 sentinel whose REDC constants do not exist.
var ErrNoNTTKernel = errors.New("ff: field backend has no fused NTT kernel")

// NTTSupport reports whether f can run the fused kernel transform at
// length 2^log2n, returning the primitive root to drive it with. The error
// is typed: errors.Is(err, ErrNoRootOfUnity) for a prime with too little
// 2-adicity (or p = 2), errors.Is(err, ErrNoNTTKernel) for a backend with
// no fused transform at all. Callers must treat any error as "take the
// schoolbook path", never as fatal.
func NTTSupport[E any](f Field[E], log2n int) (root E, err error) {
	var zero E
	ker, ok := any(f).(NTTKernel[E])
	if !ok {
		return zero, fmt.Errorf("ff: %T: %w", f, ErrNoNTTKernel)
	}
	r, ok := any(f).(RootsOfUnity[E])
	if !ok {
		return zero, fmt.Errorf("ff: %T has no 2-power roots of unity: %w", f, ErrNoRootOfUnity)
	}
	root, ok = r.RootOfUnity(log2n)
	if !ok {
		return zero, fmt.Errorf("ff: order 2^%d exceeds the 2-adicity of the unit group: %w", log2n, ErrNoRootOfUnity)
	}
	// Probe the kernel with a trivial transform: backends that advertise
	// the interface but cannot run it (p = 2 has no REDC constants) report
	// false instead of panicking, and callers must fall back.
	probe := make([]E, 1)
	probe[0] = f.Zero()
	if !ker.NTTInPlace(probe, f.One(), 0) {
		return zero, fmt.Errorf("ff: %T fused transform unavailable for this modulus: %w", f, ErrNoNTTKernel)
	}
	return root, nil
}

// nttKey identifies one cached twiddle table: the transform is determined
// by the modulus, the primitive root, and the size.
type nttKey struct {
	p, root uint64
	log2n   int
}

// nttTwiddleCache maps nttKey → []uint64: the Montgomery-form twiddles of
// every butterfly stage, concatenated so stage s (1-based) occupies
// [2^{s−1}−1, 2^s−1). Total n−1 words per (p, root, size) triple.
var nttTwiddleCache sync.Map

// nttTwiddles returns the cached stage-concatenated twiddle table for a
// 2^log2n transform with the given primitive root, building it on first
// use. log2n must be ≥ 1.
func (f Fp64) nttTwiddles(root uint64, log2n int) []uint64 {
	key := nttKey{p: f.p, root: root, log2n: log2n}
	if v, ok := nttTwiddleCache.Load(key); ok {
		return v.([]uint64)
	}
	// Stage s uses ω_s = root^(2^{log2n−s}); Montgomery form is closed
	// under mulRedc, so the squaring chain stays in form.
	stageRoot := make([]uint64, log2n+1)
	stageRoot[log2n] = f.toMont(root)
	for s := log2n - 1; s >= 1; s-- {
		stageRoot[s] = f.mulRedc(stageRoot[s+1], stageRoot[s+1])
	}
	tw := make([]uint64, (1<<log2n)-1)
	rModP := f.mulRedc(1%f.p, f.r2) // toMont(1) = R mod p
	for s := 1; s <= log2n; s++ {
		half := 1 << (s - 1)
		w := rModP
		wm := stageRoot[s]
		stage := tw[half-1 : 2*half-1]
		for j := range stage {
			stage[j] = w
			w = f.mulRedc(w, wm)
		}
	}
	actual, _ := nttTwiddleCache.LoadOrStore(key, tw)
	return actual.([]uint64)
}
