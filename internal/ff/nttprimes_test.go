package ff

import (
	"math/big"
	"testing"
)

// TestGenerateNTTPrimes: every generated prime must build a valid Fp64,
// carry the promised two-adicity (usable roots of unity for the NTT fast
// path), be distinct, and come out in descending order deterministically.
func TestGenerateNTTPrimes(t *testing.T) {
	const count = 8
	primes, err := GenerateNTTPrimes(62, 20, count)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != count {
		t.Fatalf("got %d primes, want %d", len(primes), count)
	}
	seen := make(map[uint64]bool)
	for i, p := range primes {
		if seen[p] {
			t.Fatalf("duplicate prime %d", p)
		}
		seen[p] = true
		if i > 0 && primes[i-1] <= p {
			t.Fatalf("primes not descending: %d then %d", primes[i-1], p)
		}
		if p>>61 != 1 {
			t.Fatalf("prime %d is not 62-bit", p)
		}
		if (p-1)%(1<<20) != 0 {
			t.Fatalf("prime %d lacks 2^20 | p−1", p)
		}
		f, err := NewFp64(p)
		if err != nil {
			t.Fatalf("NewFp64(%d): %v", p, err)
		}
		// A primitive 2^20-th root of unity must exist and have exact order.
		w, ok := f.RootOfUnity(20)
		if !ok {
			t.Fatalf("prime %d: no 2^20-th root of unity", p)
		}
		if f.Pow(w, 1<<19) != p-1 {
			t.Fatalf("prime %d: root of unity has wrong order", p)
		}
	}

	// Determinism: a second generation yields the same sequence.
	again, err := GenerateNTTPrimes(62, 20, count)
	if err != nil {
		t.Fatal(err)
	}
	for i := range primes {
		if primes[i] != again[i] {
			t.Fatalf("sequence not deterministic at %d: %d vs %d", i, primes[i], again[i])
		}
	}
}

// TestNTTPrimeSeqResumes: a sequence hands out fresh primes across calls —
// the bad-prime replacement path draws from the same walk the initial set
// came from, so replacements never collide with primes already in use.
func TestNTTPrimeSeqResumes(t *testing.T) {
	g, err := NewNTTPrimeSeq(0, 0) // defaults
	if err != nil {
		t.Fatal(err)
	}
	if g.Log2n() != DefaultNTTLog2n {
		t.Fatalf("Log2n = %d, want default %d", g.Log2n(), DefaultNTTLog2n)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 12; i++ {
		p, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("Next repeated prime %d", p)
		}
		seen[p] = true
		if !new(big.Int).SetUint64(p).ProbablyPrime(32) {
			t.Fatalf("Next returned composite %d", p)
		}
	}
}

// TestNTTPrimeSeqRejectsBadParams: out-of-range sizes fail loudly instead
// of silently producing unusable residue fields.
func TestNTTPrimeSeqRejectsBadParams(t *testing.T) {
	for _, tc := range []struct{ bits, log2n int }{
		{19, 10}, {63, 10}, {40, 39}, {30, -1},
	} {
		if _, err := NewNTTPrimeSeq(tc.bits, tc.log2n); err == nil {
			t.Fatalf("NewNTTPrimeSeq(%d, %d) accepted invalid params", tc.bits, tc.log2n)
		}
	}
	if _, err := GenerateNTTPrimes(62, 20, 0); err == nil {
		t.Fatal("GenerateNTTPrimes accepted count 0")
	}
}
