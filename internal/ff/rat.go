package ff

import "math/big"

// Rat is the field Q of exact rational numbers, the reproduction's
// characteristic-zero field. Elements are *big.Rat values, treated as
// immutable.
//
// Over Q the Kaltofen–Pan circuits are unconditionally valid (the
// characteristic restriction is vacuous) but coefficient growth makes large
// dimensions expensive; the tests use Q mainly to cross-validate the finite
// field paths and to exercise the least-squares extension, which the paper
// states for characteristic zero.
type Rat struct{}

// NewRat returns the field of rationals.
func NewRat() Rat { return Rat{} }

// Zero returns 0.
func (Rat) Zero() *big.Rat { return new(big.Rat) }

// One returns 1.
func (Rat) One() *big.Rat { return big.NewRat(1, 1) }

// Add returns a + b.
func (Rat) Add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }

// Sub returns a − b.
func (Rat) Sub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }

// Neg returns −a.
func (Rat) Neg(a *big.Rat) *big.Rat { return new(big.Rat).Neg(a) }

// Mul returns a·b.
func (Rat) Mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }

// IsZero reports whether a == 0.
func (Rat) IsZero(a *big.Rat) bool { return a.Sign() == 0 }

// Equal reports whether a == b.
func (Rat) Equal(a, b *big.Rat) bool { return a.Cmp(b) == 0 }

// FromInt64 returns v as a rational.
func (Rat) FromInt64(v int64) *big.Rat { return big.NewRat(v, 1) }

// String formats a as a fraction.
func (Rat) String(a *big.Rat) string { return a.RatString() }

// Inv returns 1/a.
func (Rat) Inv(a *big.Rat) (*big.Rat, error) {
	if a.Sign() == 0 {
		return nil, ErrDivisionByZero
	}
	return new(big.Rat).Inv(a), nil
}

// Div returns a/b.
func (r Rat) Div(a, b *big.Rat) (*big.Rat, error) {
	if b.Sign() == 0 {
		return nil, ErrDivisionByZero
	}
	return new(big.Rat).Quo(a, b), nil
}

// Characteristic returns 0.
func (Rat) Characteristic() *big.Int { return new(big.Int) }

// Cardinality returns 0 (infinite).
func (Rat) Cardinality() *big.Int { return new(big.Int) }

// Elem returns the integer i as a rational: the canonical sampling subset
// of Q of size s is {0, 1, …, s−1}.
func (Rat) Elem(i uint64) *big.Rat {
	return new(big.Rat).SetInt(new(big.Int).SetUint64(i))
}

var _ Field[*big.Rat] = Rat{}
