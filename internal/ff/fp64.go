package ff

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Fp64 is the prime field F_p for a word-sized prime p < 2⁶³, with elements
// represented as uint64 values in [0, p). It is the workhorse field of the
// reproduction: fast enough for the large experiments and exact, as the
// abstract-field model requires.
type Fp64 struct {
	p uint64
}

// Word-sized primes used throughout the tests and benchmarks. All exceed
// any dimension n exercised here, so Leverrier's divisions by 2…n are valid.
const (
	// P62 is a 62-bit prime.
	P62 uint64 = 4611686018427387847 // 2⁶² − 57
	// P31 is a Mersenne prime, 2³¹ − 1.
	P31 uint64 = 2147483647
	// P17 is a small prime used in probability experiments where failures
	// must actually be observable.
	P17 uint64 = 131071 // 2¹⁷ − 1
)

// NewFp64 returns F_p. p must be an odd prime below 2⁶³; primality of small
// candidates is checked eagerly and large candidates probabilistically, so
// that a composite modulus fails fast rather than corrupting experiments.
func NewFp64(p uint64) (Fp64, error) {
	if p < 2 || p >= 1<<63 {
		return Fp64{}, fmt.Errorf("ff: modulus %d out of range [2, 2^63)", p)
	}
	if !new(big.Int).SetUint64(p).ProbablyPrime(32) {
		return Fp64{}, fmt.Errorf("ff: modulus %d is not prime", p)
	}
	return Fp64{p: p}, nil
}

// MustFp64 is NewFp64 for known-good constants; it panics on error.
func MustFp64(p uint64) Fp64 {
	f, err := NewFp64(p)
	if err != nil {
		panic(err)
	}
	return f
}

// Modulus returns p.
func (f Fp64) Modulus() uint64 { return f.p }

// Zero returns 0.
func (f Fp64) Zero() uint64 { return 0 }

// One returns 1.
func (f Fp64) One() uint64 { return 1 % f.p }

// Add returns a + b mod p.
func (f Fp64) Add(a, b uint64) uint64 {
	s := a + b // p < 2⁶³ so no overflow
	if s >= f.p {
		s -= f.p
	}
	return s
}

// Sub returns a − b mod p.
func (f Fp64) Sub(a, b uint64) uint64 {
	d := a - b
	if a < b {
		d += f.p
	}
	return d
}

// Neg returns −a mod p.
func (f Fp64) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.p - a
}

// Mul returns a·b mod p using a 128-bit product.
func (f Fp64) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, f.p)
	return rem
}

// IsZero reports whether a == 0.
func (f Fp64) IsZero(a uint64) bool { return a == 0 }

// Equal reports whether a == b.
func (f Fp64) Equal(a, b uint64) bool { return a == b }

// FromInt64 returns v mod p as an element of [0, p).
func (f Fp64) FromInt64(v int64) uint64 {
	m := v % int64(f.p)
	if m < 0 {
		m += int64(f.p)
	}
	return uint64(m)
}

// String formats a in decimal.
func (f Fp64) String(a uint64) string { return fmt.Sprintf("%d", a) }

// Inv returns a⁻¹ mod p via the extended Euclidean algorithm.
func (f Fp64) Inv(a uint64) (uint64, error) {
	if a == 0 {
		return 0, ErrDivisionByZero
	}
	// Extended Euclid over int64: p < 2⁶³ and all intermediates stay below
	// p in magnitude.
	t, newT := int64(0), int64(1)
	r, newR := int64(f.p), int64(a%f.p)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if r != 1 {
		return 0, ErrNotInvertible // unreachable for prime p
	}
	if t < 0 {
		t += int64(f.p)
	}
	return uint64(t), nil
}

// Div returns a/b mod p.
func (f Fp64) Div(a, b uint64) (uint64, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, bi), nil
}

// Pow returns a^e mod p by binary exponentiation.
func (f Fp64) Pow(a uint64, e uint64) uint64 {
	r := f.One()
	base := a % f.p
	for e > 0 {
		if e&1 == 1 {
			r = f.Mul(r, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return r
}

// Characteristic returns p.
func (f Fp64) Characteristic() *big.Int { return new(big.Int).SetUint64(f.p) }

// Cardinality returns p.
func (f Fp64) Cardinality() *big.Int { return new(big.Int).SetUint64(f.p) }

// Elem returns i mod p: the canonical enumeration of F_p is 0, 1, …, p−1.
func (f Fp64) Elem(i uint64) uint64 { return i % f.p }

var _ Field[uint64] = Fp64{}
