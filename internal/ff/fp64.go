package ff

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Fp64 is the prime field F_p for a word-sized prime p < 2⁶³, with elements
// represented as uint64 values in [0, p). It is the workhorse field of the
// reproduction: fast enough for the large experiments and exact, as the
// abstract-field model requires.
//
// Internally multiplication is division-free: the constructor precomputes
// the Montgomery constants p' = −p⁻¹ mod 2⁶⁴ and R² mod p (R = 2⁶⁴), and
// Mul/Pow/Inv reduce 128-bit products with REDC instead of the ~30-cycle
// hardware division a bits.Div64 reduction costs. The external element
// representation stays the canonical residue in [0, p) — Montgomery form is
// an implementation detail that never escapes (see toMont/fromMont).
type Fp64 struct {
	p    uint64
	pInv uint64 // p' = −p⁻¹ mod 2⁶⁴; 0 iff p = 2 (REDC needs an odd modulus)
	r2   uint64 // R² mod p, the to-Montgomery factor
}

// Word-sized primes used throughout the tests and benchmarks. All exceed
// any dimension n exercised here, so Leverrier's divisions by 2…n are valid.
const (
	// P62 is a 62-bit prime.
	P62 uint64 = 4611686018427387847 // 2⁶² − 57
	// P31 is a Mersenne prime, 2³¹ − 1.
	P31 uint64 = 2147483647
	// P17 is a small prime used in probability experiments where failures
	// must actually be observable.
	P17 uint64 = 131071 // 2¹⁷ − 1
)

// NewFp64 returns F_p. p must be an odd prime below 2⁶³ (or 2); primality of
// small candidates is checked eagerly and large candidates probabilistically,
// so that a composite modulus fails fast rather than corrupting experiments.
func NewFp64(p uint64) (Fp64, error) {
	if p < 2 || p >= 1<<63 {
		return Fp64{}, fmt.Errorf("ff: modulus %d out of range [2, 2^63)", p)
	}
	if !new(big.Int).SetUint64(p).ProbablyPrime(32) {
		return Fp64{}, fmt.Errorf("ff: modulus %d is not prime", p)
	}
	f := Fp64{p: p}
	if p%2 == 1 {
		// p' = −p⁻¹ mod 2⁶⁴ by Newton iteration: each step doubles the
		// number of correct low bits, and x = p is already correct mod 2³.
		x := p
		for i := 0; i < 5; i++ {
			x *= 2 - p*x
		}
		f.pInv = -x
		// R mod p, then R² mod p (one-time divisions at construction).
		_, r := bits.Div64(1, 0, p) // 2⁶⁴ mod p; 1 < p so Div64 is in range
		hi, lo := bits.Mul64(r, r)
		_, f.r2 = bits.Div64(hi, lo, p) // hi < p²/2⁶⁴ < p
	}
	return f, nil
}

// MustFp64 is NewFp64 for known-good constants; it panics on error.
func MustFp64(p uint64) Fp64 {
	f, err := NewFp64(p)
	if err != nil {
		panic(err)
	}
	return f
}

// Modulus returns p.
func (f Fp64) Modulus() uint64 { return f.p }

// Zero returns 0.
func (f Fp64) Zero() uint64 { return 0 }

// One returns 1.
func (f Fp64) One() uint64 { return 1 % f.p }

// Add returns a + b mod p.
func (f Fp64) Add(a, b uint64) uint64 {
	s := a + b // p < 2⁶³ so no overflow
	if s >= f.p {
		s -= f.p
	}
	return s
}

// Sub returns a − b mod p.
func (f Fp64) Sub(a, b uint64) uint64 {
	d := a - b
	if a < b {
		d += f.p
	}
	return d
}

// Neg returns −a mod p.
func (f Fp64) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.p - a
}

// redc is the Montgomery reduction: for x = hi·2⁶⁴ + lo < p·2⁶⁴ it returns
// x·R⁻¹ mod p in [0, p). The caller must guarantee hi < p (true for any
// product of two canonical residues) so that the quotient fits a word.
func (f Fp64) redc(hi, lo uint64) uint64 {
	m := lo * f.pInv
	mh, ml := bits.Mul64(m, f.p)
	// x + m·p ≡ 0 mod 2⁶⁴ by choice of m; the low words cancel exactly,
	// leaving only the carry into the high word.
	_, c := bits.Add64(lo, ml, 0)
	t, _ := bits.Add64(hi, mh, c) // < 2p < 2⁶⁴, no overflow
	if t >= f.p {
		t -= f.p
	}
	return t
}

// mulRedc returns a·b·R⁻¹ mod p: one 128-bit product and one REDC.
func (f Fp64) mulRedc(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return f.redc(hi, lo)
}

// toMont returns a·R mod p, the Montgomery form of a.
func (f Fp64) toMont(a uint64) uint64 { return f.mulRedc(a, f.r2) }

// fromMont inverts toMont: a·R⁻¹ mod p.
func (f Fp64) fromMont(a uint64) uint64 { return f.redc(0, a) }

// Mul returns a·b mod p. For odd p the reduction is two REDC passes
// (a·b·R⁻¹, then ·R² ·R⁻¹), about 3 wide multiplications instead of a
// hardware division; F_2 keeps the trivial path.
func (f Fp64) Mul(a, b uint64) uint64 {
	if f.pInv == 0 {
		return a & b // p = 2
	}
	return f.mulRedc(f.mulRedc(a, b), f.r2)
}

// IsZero reports whether a == 0.
func (f Fp64) IsZero(a uint64) bool { return a == 0 }

// Equal reports whether a == b.
func (f Fp64) Equal(a, b uint64) bool { return a == b }

// FromInt64 returns v mod p as an element of [0, p).
func (f Fp64) FromInt64(v int64) uint64 {
	m := v % int64(f.p)
	if m < 0 {
		m += int64(f.p)
	}
	return uint64(m)
}

// String formats a in decimal.
func (f Fp64) String(a uint64) string { return fmt.Sprintf("%d", a) }

// Inv returns a⁻¹ mod p. For odd p it is Fermat's a^(p−2) on the REDC
// ladder (≈190 wide multiplications, division-free and branch-predictable,
// beating the division-heavy extended Euclid loop); F_2 inverts trivially.
func (f Fp64) Inv(a uint64) (uint64, error) {
	if a == 0 {
		return 0, ErrDivisionByZero
	}
	return f.Pow(a, f.p-2), nil
}

// Div returns a/b mod p.
func (f Fp64) Div(a, b uint64) (uint64, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, bi), nil
}

// Pow returns a^e mod p by binary exponentiation. For odd p the whole
// ladder runs in Montgomery form: one conversion in, squarings and
// multiplications at one REDC each, one conversion out.
func (f Fp64) Pow(a uint64, e uint64) uint64 {
	if f.pInv == 0 {
		if e == 0 {
			return 1
		}
		return a & 1
	}
	r := f.toMont(1)
	base := f.toMont(a % f.p)
	for e > 0 {
		if e&1 == 1 {
			r = f.mulRedc(r, base)
		}
		base = f.mulRedc(base, base)
		e >>= 1
	}
	return f.fromMont(r)
}

// Characteristic returns p.
func (f Fp64) Characteristic() *big.Int { return new(big.Int).SetUint64(f.p) }

// Cardinality returns p.
func (f Fp64) Cardinality() *big.Int { return new(big.Int).SetUint64(f.p) }

// Elem returns i mod p: the canonical enumeration of F_p is 0, 1, …, p−1.
func (f Fp64) Elem(i uint64) uint64 { return i % f.p }

var _ Field[uint64] = Fp64{}
