// Package ff provides the abstract field layer of the Kaltofen–Pan
// reproduction: a generic Field interface together with concrete
// implementations (word-sized prime fields, big prime fields, extension
// fields F_{p^k} including GF(2^k), and the exact rationals), uniform
// sampling from finite subsets S ⊆ K, and an instrumented op-counting
// wrapper used by the processor-count experiments.
//
// Every algorithm in this repository is written against Field[E]: the field
// is an interface object carrying the operations, and E is the unboxed
// element type (uint64 for word-sized prime fields, []uint64 for extension
// fields, *big.Int / *big.Rat for the arbitrary-precision fields). All
// operations treat their arguments as immutable and return fresh values, so
// elements may be freely shared and stored.
package ff

import (
	"errors"
	"math/big"
)

// ErrDivisionByZero is returned by Inv and Div when the divisor is zero.
// In the Kaltofen–Pan model a division by zero corresponds to an unlucky
// random choice (or a singular input); Las Vegas drivers catch this error
// and retry with fresh randomness.
var ErrDivisionByZero = errors.New("ff: division by zero")

// ErrNotInvertible is returned by Inv when the element is a non-zero
// non-unit. It can only occur in rings that are not fields (for example an
// extension ring F_p[x]/(f) with reducible f); genuine fields never return
// it.
var ErrNotInvertible = errors.New("ff: element not invertible")

// Ring is the arithmetic core shared by all coefficient domains. An
// individual operation corresponds to one unit-cost step of the paper's
// algebraic circuit / algebraic PRAM model.
type Ring[E any] interface {
	// Zero returns the additive identity.
	Zero() E
	// One returns the multiplicative identity.
	One() E
	// Add returns a + b.
	Add(a, b E) E
	// Sub returns a − b.
	Sub(a, b E) E
	// Neg returns −a.
	Neg(a E) E
	// Mul returns a·b.
	Mul(a, b E) E
	// IsZero reports whether a is the additive identity.
	IsZero(a E) bool
	// Equal reports whether a and b denote the same element.
	Equal(a, b E) bool
	// FromInt64 returns the image of v under the unique ring homomorphism
	// Z → R (v mod p in characteristic p).
	FromInt64(v int64) E
	// String formats a for diagnostics and test failure messages.
	String(a E) string
}

// Field extends Ring with division and with the structural data the
// Kaltofen–Pan algorithms need: the characteristic (Leverrier's method
// requires characteristic zero or > n), the cardinality (to size the random
// subset S), and a canonical enumeration of elements used for uniform
// sampling from S.
type Field[E any] interface {
	Ring[E]

	// Inv returns a⁻¹, or ErrDivisionByZero if a is zero.
	Inv(a E) (E, error)
	// Div returns a/b, or ErrDivisionByZero if b is zero.
	Div(a, b E) (E, error)

	// Characteristic returns the field characteristic; zero denotes
	// characteristic 0.
	Characteristic() *big.Int
	// Cardinality returns the number of elements, or zero for an infinite
	// field.
	Cardinality() *big.Int
	// Elem returns the i-th element of the canonical enumeration of the
	// field. The map is injective on 0 ≤ i < min(Cardinality, 2⁶⁴), and
	// Elem(0) is not required to be zero. Uniform sampling from a subset
	// S of size s draws i uniformly from [0, s).
	Elem(i uint64) E
}

// CharacteristicExceeds reports whether the characteristic of f is zero or
// strictly greater than n. Leverrier/Csanky-style algorithms (and therefore
// the headline Kaltofen–Pan circuits) divide by 2, 3, …, n and are valid
// exactly under this condition.
func CharacteristicExceeds[E any](f Field[E], n int) bool {
	ch := f.Characteristic()
	if ch.Sign() == 0 {
		return true
	}
	return ch.Cmp(big.NewInt(int64(n))) > 0
}

// SubsetSize returns the size of the canonical sampling subset S to use so
// that the paper's failure bound 3n²/|S| is at most eps, clamped to the
// field cardinality. A zero return means the field is too small to reach
// the requested failure bound (the paper's remedy is to move to an
// algebraic extension; see FpExt).
func SubsetSize[E any](f Field[E], n int, eps float64) uint64 {
	if eps <= 0 {
		eps = 0.5
	}
	need := uint64(3*float64(n)*float64(n)/eps) + 1
	card := f.Cardinality()
	if card.Sign() == 0 {
		return need
	}
	if card.IsUint64() {
		if c := card.Uint64(); c < need {
			return 0
		}
	}
	return need
}
