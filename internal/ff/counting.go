package ff

import (
	"math/big"
	"sync/atomic"
)

// OpCounts records how many of each arithmetic operation a computation
// performed. One operation is one unit-cost step of the paper's model, so
// Total is directly comparable to the paper's circuit-size bounds and to
// the sequential step counts of the baselines (experiment E5, E11).
type OpCounts struct {
	Add uint64 // additions and subtractions and negations
	Mul uint64
	Div uint64 // divisions and inversions
}

// Total returns the total number of field operations.
func (c OpCounts) Total() uint64 { return c.Add + c.Mul + c.Div }

// Counting wraps a Field and counts every arithmetic operation performed
// through it. Counters are updated atomically so parallel evaluations can
// share one wrapper. Zero tests and equality tests are free, matching the
// paper's accounting (its circuits have no zero tests at all).
type Counting[E any] struct {
	f   Field[E]
	add atomic.Uint64
	mul atomic.Uint64
	div atomic.Uint64
}

// NewCounting returns a counting wrapper around f.
func NewCounting[E any](f Field[E]) *Counting[E] {
	return &Counting[E]{f: f}
}

// Counts returns a snapshot of the counters.
func (c *Counting[E]) Counts() OpCounts {
	return OpCounts{Add: c.add.Load(), Mul: c.mul.Load(), Div: c.div.Load()}
}

// Reset zeroes the counters.
func (c *Counting[E]) Reset() {
	c.add.Store(0)
	c.mul.Store(0)
	c.div.Store(0)
}

// Unwrap returns the underlying field.
func (c *Counting[E]) Unwrap() Field[E] { return c.f }

// Zero returns the additive identity (not counted).
func (c *Counting[E]) Zero() E { return c.f.Zero() }

// One returns the multiplicative identity (not counted).
func (c *Counting[E]) One() E { return c.f.One() }

// Add counts one addition.
func (c *Counting[E]) Add(a, b E) E {
	c.add.Add(1)
	return c.f.Add(a, b)
}

// Sub counts one addition.
func (c *Counting[E]) Sub(a, b E) E {
	c.add.Add(1)
	return c.f.Sub(a, b)
}

// Neg counts one addition.
func (c *Counting[E]) Neg(a E) E {
	c.add.Add(1)
	return c.f.Neg(a)
}

// Mul counts one multiplication.
func (c *Counting[E]) Mul(a, b E) E {
	c.mul.Add(1)
	return c.f.Mul(a, b)
}

// IsZero is not counted.
func (c *Counting[E]) IsZero(a E) bool { return c.f.IsZero(a) }

// Equal is not counted.
func (c *Counting[E]) Equal(a, b E) bool { return c.f.Equal(a, b) }

// FromInt64 is not counted (constants are free inputs in the circuit model).
func (c *Counting[E]) FromInt64(v int64) E { return c.f.FromInt64(v) }

// String delegates to the underlying field.
func (c *Counting[E]) String(a E) string { return c.f.String(a) }

// Inv counts one division.
func (c *Counting[E]) Inv(a E) (E, error) {
	c.div.Add(1)
	return c.f.Inv(a)
}

// Div counts one division.
func (c *Counting[E]) Div(a, b E) (E, error) {
	c.div.Add(1)
	return c.f.Div(a, b)
}

// Characteristic delegates to the underlying field.
func (c *Counting[E]) Characteristic() *big.Int { return c.f.Characteristic() }

// Cardinality delegates to the underlying field.
func (c *Counting[E]) Cardinality() *big.Int { return c.f.Cardinality() }

// Elem delegates to the underlying field.
func (c *Counting[E]) Elem(i uint64) E { return c.f.Elem(i) }

// RootOfUnity forwards the fast-multiplication capability of the wrapped
// field (not counted: roots are constants of the circuit model), so op
// counts measured through the wrapper reflect the same algorithm the bare
// field would run.
func (c *Counting[E]) RootOfUnity(log2n int) (E, bool) {
	if r, ok := c.f.(RootsOfUnity[E]); ok {
		return r.RootOfUnity(log2n)
	}
	var zero E
	return zero, false
}

var _ RootsOfUnity[uint64] = (*Counting[uint64])(nil)

var _ Field[uint64] = (*Counting[uint64])(nil)
