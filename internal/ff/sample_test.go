package ff

import (
	"math"
	"sync"
	"testing"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewSource(43)
	same := 0
	a = NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 100 draws", same)
	}
}

func TestUint64nRange(t *testing.T) {
	s := NewSource(1)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 5} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets.
	s := NewSource(99)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile ≈ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi² = %f suggests non-uniform sampling", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %f, want ≈ 0.5", mean)
	}
}

func TestSampleSubset(t *testing.T) {
	f := MustFp64(P62)
	src := NewSource(7)
	const subset = 100
	for i := 0; i < 1000; i++ {
		v := Sample[uint64](f, src, subset)
		if v >= subset {
			t.Fatalf("sample %d outside canonical subset of size %d", v, subset)
		}
	}
	vec := SampleVec[uint64](f, src, 32, subset)
	if len(vec) != 32 {
		t.Fatalf("SampleVec length %d", len(vec))
	}
	nz := SampleNonZero[uint64](f, src, 2)
	if nz == 0 {
		t.Fatal("SampleNonZero returned zero")
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	for _, n := range []int{0, -1, -1 << 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			NewSource(3).Intn(n)
		}()
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource(13)
	for i := 0; i < 500; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestSampleClampsSubsetToFieldOrder(t *testing.T) {
	// Regression: subset > p used to wrap through f.Elem, sampling the low
	// residues twice as often and skewing the equation (2) failure bound.
	// With the clamp, an oversized subset must behave exactly like
	// subset = p: same source state, same draws.
	f := MustFp64(101)
	a, b := NewSource(21), NewSource(21)
	for i := 0; i < 2000; i++ {
		over := Sample[uint64](f, a, 1<<40)
		exact := Sample[uint64](f, b, 101)
		if over != exact {
			t.Fatalf("draw %d: oversized subset gave %d, clamped gave %d", i, over, exact)
		}
	}
	// And the draws stay uniform over the whole field: under the old wrap
	// with subset = 150, residues below 49 appeared about twice as often.
	src := NewSource(23)
	const draws = 101 * 400
	var counts [101]int
	for i := 0; i < draws; i++ {
		counts[Sample[uint64](f, src, 150)]++
	}
	lo, hi := draws, 0
	for _, c := range counts {
		lo, hi = min(lo, c), max(hi, c)
	}
	if float64(hi) > 1.5*float64(lo) {
		t.Fatalf("skewed sampling: bucket counts range %d..%d", lo, hi)
	}
	// Vectors go through the same clamp.
	va := SampleVec[uint64](f, NewSource(29), 64, 1<<50)
	vb := SampleVec[uint64](f, NewSource(29), 64, 101)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("SampleVec clamp mismatch at %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	s := NewSource(11)
	child := s.Split()
	// Parent and child streams should diverge immediately.
	same := 0
	for i := 0; i < 64; i++ {
		if s.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split streams collided %d times", same)
	}
}

// TestSourceSplitPerGoroutine is the documented concurrent-use pattern
// under the race detector: one root source, one Split child per goroutine.
// Replacing the children with the shared root (the pre-kpd server sharing
// pattern) makes this test fail under -race — the state word is mutated
// unsynchronized — which is exactly why Source's contract forbids it.
func TestSourceSplitPerGoroutine(t *testing.T) {
	root := NewSource(42)
	const goroutines = 8
	children := make([]*Source, goroutines)
	for i := range children {
		children[i] = root.Split() // root touched only here, single-threaded
	}
	var wg sync.WaitGroup
	sums := make([]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sums[g] += children[g].Uint64()
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		for j := i + 1; j < goroutines; j++ {
			if sums[i] == sums[j] {
				t.Fatalf("split streams %d and %d produced identical draws; children must be independent", i, j)
			}
		}
	}
}

// TestSourceSplitDeterministic: splitting is part of the replayable
// deterministic stream — same seed, same children.
func TestSourceSplitDeterministic(t *testing.T) {
	a, b := NewSource(7).Split(), NewSource(7).Split()
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic in the parent seed")
		}
	}
}
