package ff

import "testing"

func TestVecOps(t *testing.T) {
	f := MustFp64(101)
	a := VecFromInt64[uint64](f, []int64{1, 2, 3, 4})
	b := VecFromInt64[uint64](f, []int64{10, 20, 30, 40})

	if got := VecAdd[uint64](f, a, b); !VecEqual[uint64](f, got, VecFromInt64[uint64](f, []int64{11, 22, 33, 44})) {
		t.Fatalf("VecAdd = %s", VecString[uint64](f, got))
	}
	if got := VecSub[uint64](f, b, a); !VecEqual[uint64](f, got, VecFromInt64[uint64](f, []int64{9, 18, 27, 36})) {
		t.Fatalf("VecSub = %s", VecString[uint64](f, got))
	}
	if got := VecScale[uint64](f, f.FromInt64(3), a); !VecEqual[uint64](f, got, VecFromInt64[uint64](f, []int64{3, 6, 9, 12})) {
		t.Fatalf("VecScale = %s", VecString[uint64](f, got))
	}
	if got := VecNeg[uint64](f, a); !VecIsZero[uint64](f, VecAdd[uint64](f, got, a)) {
		t.Fatalf("VecNeg broken")
	}
	// 1·10 + 2·20 + 3·30 + 4·40 = 300 ≡ 300 − 2·101 = 98 (mod 101)
	if got := Dot[uint64](f, a, b); got != 98 {
		t.Fatalf("Dot = %d, want 98", got)
	}
	if !VecIsZero[uint64](f, VecZero[uint64](f, 5)) {
		t.Fatal("VecZero not zero")
	}
}

func TestSumTreeMatchesSequential(t *testing.T) {
	f := MustFp64(P31)
	src := NewSource(21)
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 100, 1023} {
		terms := SampleVec[uint64](f, src, n, P31)
		want := f.Zero()
		for _, v := range terms {
			want = f.Add(want, v)
		}
		saved := VecCopy(terms)
		if got := SumTree[uint64](f, terms); got != want {
			t.Fatalf("n=%d: SumTree = %d, want %d", n, got, want)
		}
		if !VecEqual[uint64](f, terms, saved) {
			t.Fatalf("n=%d: SumTree mutated its input", n)
		}
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	f := MustFp64(101)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	VecAdd[uint64](f, make([]uint64, 2), make([]uint64, 3))
}

func TestCounting(t *testing.T) {
	base := MustFp64(101)
	c := NewCounting[uint64](base)
	a, b := c.FromInt64(7), c.FromInt64(9)
	c.Add(a, b)
	c.Sub(a, b)
	c.Neg(a)
	c.Mul(a, b)
	if _, err := c.Inv(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Div(a, b); err != nil {
		t.Fatal(err)
	}
	got := c.Counts()
	if got.Add != 3 || got.Mul != 1 || got.Div != 2 {
		t.Fatalf("Counts = %+v", got)
	}
	if got.Total() != 6 {
		t.Fatalf("Total = %d", got.Total())
	}
	c.Reset()
	if c.Counts().Total() != 0 {
		t.Fatal("Reset did not clear")
	}
	if c.Unwrap().(Fp64).Modulus() != 101 {
		t.Fatal("Unwrap lost the base field")
	}
	// Counting must not change results.
	if c.Mul(a, b) != base.Mul(a, b) {
		t.Fatal("Counting altered arithmetic")
	}
}
