package ff

import "math/bits"

// NTTKernel is the transform-sized sibling of Kernels: an in-place radix-2
// number-theoretic transform fused into the field backend. Fp64 implements
// it with every twiddle factor held in Montgomery form, so a butterfly costs
// one wide multiply plus one REDC instead of two interface calls and a
// double-REDC Mul. As with Kernels, only the raw concrete field provides
// it — the Counting wrapper and the circuit Builder do not, so op counts
// and traced circuit structure keep the generic butterfly loops.
type NTTKernel[E any] interface {
	// NTTInPlace runs the in-place decimation-in-time transform on a
	// (length 2^log2n) using the primitive 2^log2n-th root of unity root.
	// It reports false when the field cannot run the fused transform, in
	// which case the caller must take its generic path.
	NTTInPlace(a []E, root E, log2n int) bool
}

// NTTInPlace is the fused Cooley–Tukey transform. The data stays in the
// canonical residue representation throughout: a twiddle w̃ = w·R mod p
// multiplied into a canonical value v by mulRedc gives w·v·R·R⁻¹ = w·v,
// again canonical, so only the (n/2)-entry twiddle table pays conversion.
func (f Fp64) NTTInPlace(a []uint64, root uint64, log2n int) bool {
	if f.pInv == 0 {
		return false // REDC needs an odd modulus
	}
	n := len(a)
	if n != 1<<log2n {
		panic("ff: NTTInPlace length is not 2^log2n")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	if log2n == 0 {
		return true
	}
	// The per-stage twiddle tables are immutable and shared process-wide
	// (ntttables.go): repeated transforms at one size — the cached
	// structured applies issue thousands per solve — skip the root-chain
	// and table rebuild entirely.
	p := f.p
	twAll := f.nttTwiddles(root, log2n)
	for s := 1; s <= log2n; s++ {
		m := 1 << s
		half := m / 2
		tw := twAll[half-1 : m-1]
		for k := 0; k < n; k += m {
			lo, up := a[k:k+half], a[k+half:k+m]
			for j := 0; j < half; j++ {
				hi, l := bits.Mul64(tw[j], up[j])
				t := f.redc(hi, l)
				u := lo[j]
				sum := u + t // p < 2⁶³: no overflow
				if sum >= p {
					sum -= p
				}
				diff := u - t
				if u < t {
					diff += p
				}
				lo[j] = sum
				up[j] = diff
			}
		}
	}
	return true
}

var _ NTTKernel[uint64] = Fp64{}
