package ff

import (
	"fmt"
	"math/big"
)

// FpBig is the prime field F_p for an arbitrary-precision prime p, with
// elements represented as *big.Int values normalized to [0, p). It covers
// the regime where |S| must exceed what a word-sized field can offer (the
// paper requires card(S) ≥ 3n²/ε) without leaving exact arithmetic.
//
// Elements are treated as immutable: FpBig never mutates an argument and
// never returns an alias of one.
type FpBig struct {
	p *big.Int
}

// NewFpBig returns F_p for the given prime p.
func NewFpBig(p *big.Int) (FpBig, error) {
	if p == nil || p.Sign() <= 0 || !p.ProbablyPrime(32) {
		return FpBig{}, fmt.Errorf("ff: %v is not prime", p)
	}
	return FpBig{p: new(big.Int).Set(p)}, nil
}

// MustFpBig is NewFpBig for known-good moduli; it panics on error.
func MustFpBig(p *big.Int) FpBig {
	f, err := NewFpBig(p)
	if err != nil {
		panic(err)
	}
	return f
}

// Modulus returns a copy of p.
func (f FpBig) Modulus() *big.Int { return new(big.Int).Set(f.p) }

// Zero returns 0.
func (f FpBig) Zero() *big.Int { return new(big.Int) }

// One returns 1.
func (f FpBig) One() *big.Int { return big.NewInt(1) }

// Add returns a + b mod p.
func (f FpBig) Add(a, b *big.Int) *big.Int {
	return new(big.Int).Add(a, b).Mod(new(big.Int).Add(a, b), f.p)
}

// Sub returns a − b mod p.
func (f FpBig) Sub(a, b *big.Int) *big.Int {
	d := new(big.Int).Sub(a, b)
	return d.Mod(d, f.p)
}

// Neg returns −a mod p.
func (f FpBig) Neg(a *big.Int) *big.Int {
	n := new(big.Int).Neg(a)
	return n.Mod(n, f.p)
}

// Mul returns a·b mod p.
func (f FpBig) Mul(a, b *big.Int) *big.Int {
	m := new(big.Int).Mul(a, b)
	return m.Mod(m, f.p)
}

// IsZero reports whether a ≡ 0.
func (f FpBig) IsZero(a *big.Int) bool { return a.Sign() == 0 }

// Equal reports whether a ≡ b.
func (f FpBig) Equal(a, b *big.Int) bool { return a.Cmp(b) == 0 }

// FromInt64 returns v mod p.
func (f FpBig) FromInt64(v int64) *big.Int {
	m := big.NewInt(v)
	return m.Mod(m, f.p)
}

// String formats a in decimal.
func (f FpBig) String(a *big.Int) string { return a.String() }

// Inv returns a⁻¹ mod p.
func (f FpBig) Inv(a *big.Int) (*big.Int, error) {
	if a.Sign() == 0 {
		return nil, ErrDivisionByZero
	}
	inv := new(big.Int).ModInverse(a, f.p)
	if inv == nil {
		return nil, ErrNotInvertible // unreachable for prime p
	}
	return inv, nil
}

// Div returns a/b mod p.
func (f FpBig) Div(a, b *big.Int) (*big.Int, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return nil, err
	}
	return f.Mul(a, bi), nil
}

// Characteristic returns p.
func (f FpBig) Characteristic() *big.Int { return new(big.Int).Set(f.p) }

// Cardinality returns p.
func (f FpBig) Cardinality() *big.Int { return new(big.Int).Set(f.p) }

// Elem returns i mod p.
func (f FpBig) Elem(i uint64) *big.Int {
	e := new(big.Int).SetUint64(i)
	return e.Mod(e, f.p)
}

var _ Field[*big.Int] = FpBig{}
