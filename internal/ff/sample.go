package ff

// Source is a small deterministic pseudo-random source (splitmix64) used for
// all randomized choices in the reproduction. A fixed seed makes every
// experiment replayable; distinct streams are obtained by seeding with
// distinct values.
//
// A Source is NOT safe for concurrent use: every draw mutates the state
// word, so two goroutines sharing one Source race on it, and — worse than
// the data race itself — each sees a stream that is neither independent of
// nor identical to the other's, silently invalidating the Las Vegas
// failure-probability accounting that assumes independent uniform draws.
// Concurrent components must hold a Source per goroutine: keep one root
// source under external synchronization and hand each worker/request its
// own Split() child (the kpd server does exactly this per request).
type Source struct {
	state uint64
}

// NewSource returns a source seeded with seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("ff: Uint64n(0)")
	}
	// Rejection sampling to avoid modulo bias.
	limit := (^uint64(0)) - (^uint64(0))%n
	for {
		v := s.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). n must be positive: a negative n
// would otherwise convert to a huge uint64 and return garbage.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("ff: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Split returns a new independent source derived from this one.
func (s *Source) Split() *Source {
	return NewSource(s.Uint64())
}

// Sample draws one element uniformly from the canonical subset S ⊆ K of
// size subset (the set {Elem(0), …, Elem(subset−1)}). This is exactly the
// paper's randomization primitive: "selected uniformly from a set containing
// s field elements".
//
// A subset exceeding the field order is clamped to the order: S can never
// contain more than the whole field, and letting indices wrap through Elem
// would sample the low residues twice as often, silently breaking the
// uniformity the paper's equation (2) failure bound is computed from.
func Sample[E any](f Field[E], src *Source, subset uint64) E {
	return f.Elem(src.Uint64n(clampSubset(f, subset)))
}

// clampSubset caps subset at the field order for finite word-sized fields;
// infinite and beyond-word fields pass through unchanged.
func clampSubset[E any](f Field[E], subset uint64) uint64 {
	card := f.Cardinality()
	if card.Sign() > 0 && card.IsUint64() {
		if c := card.Uint64(); subset > c {
			return c
		}
	}
	return subset
}

// SampleVec draws an n-vector with independent uniform entries from the
// canonical subset of size subset (clamped to the field order, as in Sample).
func SampleVec[E any](f Field[E], src *Source, n int, subset uint64) []E {
	subset = clampSubset(f, subset)
	v := make([]E, n)
	for i := range v {
		v[i] = f.Elem(src.Uint64n(subset))
	}
	return v
}

// SampleNonZero draws a non-zero element uniformly from the canonical
// subset (retrying on zero; the subset must contain a non-zero element).
func SampleNonZero[E any](f Field[E], src *Source, subset uint64) E {
	for {
		e := Sample(f, src, subset)
		if !f.IsZero(e) {
			return e
		}
	}
}
