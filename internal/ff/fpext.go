package ff

import (
	"fmt"
	"math/big"
	"strings"
)

// FpExt is the extension field F_{p^k} = F_p[x]/(m(x)) for a word-sized
// prime p and a monic irreducible modulus m of degree k. Elements are
// coefficient slices of length k, low degree first, over Fp64.
//
// The paper uses algebraic extensions in exactly this role: "For Galois
// fields K with card(K) < 3n², the algorithm is performed in an algebraic
// extension L over K, so that the failure probability can be bounded away
// from 0." FpExt with p = 2 also provides the GF(2^k) fields used by the
// small-characteristic experiments.
type FpExt struct {
	base Fp64
	mod  []uint64 // monic, degree k, length k+1
	k    int
}

// NewFpExt returns F_p[x]/(m). The modulus must be monic of degree ≥ 1 and
// irreducible over F_p; irreducibility is verified.
func NewFpExt(base Fp64, mod []uint64) (FpExt, error) {
	mod = xtrim(mod)
	k := len(mod) - 1
	if k < 1 {
		return FpExt{}, fmt.Errorf("ff: extension modulus must have degree ≥ 1")
	}
	if mod[k] != 1 {
		return FpExt{}, fmt.Errorf("ff: extension modulus must be monic")
	}
	for _, c := range mod {
		if c >= base.Modulus() {
			return FpExt{}, fmt.Errorf("ff: modulus coefficient %d out of range", c)
		}
	}
	if !xirreducible(base, mod) {
		return FpExt{}, fmt.Errorf("ff: modulus is reducible over F_%d", base.Modulus())
	}
	return FpExt{base: base, mod: mod, k: k}, nil
}

// NewGF2k returns GF(2^k) with a modulus found by deterministic search.
func NewGF2k(k int, src *Source) (FpExt, error) {
	base := MustFp64(2)
	mod, err := FindIrreducible(base, k, src)
	if err != nil {
		return FpExt{}, err
	}
	return NewFpExt(base, mod)
}

// FindIrreducible searches for a monic irreducible polynomial of degree k
// over F_p by random sampling; the expected number of trials is about k.
func FindIrreducible(base Fp64, k int, src *Source) ([]uint64, error) {
	if k < 1 {
		return nil, fmt.Errorf("ff: degree must be ≥ 1")
	}
	p := base.Modulus()
	for trial := 0; trial < 64*(k+1); trial++ {
		f := make([]uint64, k+1)
		f[k] = 1
		for i := 0; i < k; i++ {
			f[i] = src.Uint64n(p)
		}
		if f[0] == 0 {
			f[0] = 1 // avoid the trivially reducible x | f case cheaply
		}
		if xirreducible(base, f) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("ff: no irreducible polynomial of degree %d found", k)
}

// Base returns the prime subfield F_p.
func (f FpExt) Base() Fp64 { return f.base }

// Degree returns the extension degree k.
func (f FpExt) Degree() int { return f.k }

// Modulus returns a copy of the defining polynomial.
func (f FpExt) Modulus() []uint64 { return append([]uint64(nil), f.mod...) }

func (f FpExt) fresh() []uint64 { return make([]uint64, f.k) }

// Zero returns the zero element.
func (f FpExt) Zero() []uint64 { return f.fresh() }

// One returns the unit element.
func (f FpExt) One() []uint64 {
	e := f.fresh()
	e[0] = f.base.One()
	return e
}

// Add returns a + b coefficientwise.
func (f FpExt) Add(a, b []uint64) []uint64 {
	c := f.fresh()
	for i := range c {
		c[i] = f.base.Add(f.coef(a, i), f.coef(b, i))
	}
	return c
}

// Sub returns a − b coefficientwise.
func (f FpExt) Sub(a, b []uint64) []uint64 {
	c := f.fresh()
	for i := range c {
		c[i] = f.base.Sub(f.coef(a, i), f.coef(b, i))
	}
	return c
}

// Neg returns −a.
func (f FpExt) Neg(a []uint64) []uint64 {
	c := f.fresh()
	for i := range c {
		c[i] = f.base.Neg(f.coef(a, i))
	}
	return c
}

// Mul returns a·b reduced modulo the defining polynomial.
func (f FpExt) Mul(a, b []uint64) []uint64 {
	prod := xmul(f.base, a, b)
	_, rem := xdivmod(f.base, prod, f.mod)
	return f.pad(rem)
}

// IsZero reports whether all coefficients vanish.
func (f FpExt) IsZero(a []uint64) bool {
	for _, c := range a {
		if c != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a and b denote the same residue.
func (f FpExt) Equal(a, b []uint64) bool {
	for i := 0; i < f.k; i++ {
		if f.coef(a, i) != f.coef(b, i) {
			return false
		}
	}
	return true
}

// FromInt64 embeds v through the prime subfield.
func (f FpExt) FromInt64(v int64) []uint64 {
	e := f.fresh()
	e[0] = f.base.FromInt64(v)
	return e
}

// String formats a as a polynomial in the generator t.
func (f FpExt) String(a []uint64) string {
	var parts []string
	for i := f.k - 1; i >= 0; i-- {
		if c := f.coef(a, i); c != 0 {
			switch i {
			case 0:
				parts = append(parts, fmt.Sprintf("%d", c))
			case 1:
				parts = append(parts, fmt.Sprintf("%d·t", c))
			default:
				parts = append(parts, fmt.Sprintf("%d·t^%d", c, i))
			}
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// Inv returns a⁻¹ via the extended Euclidean algorithm in F_p[x].
func (f FpExt) Inv(a []uint64) ([]uint64, error) {
	if f.IsZero(a) {
		return nil, ErrDivisionByZero
	}
	g, s := xgcdext(f.base, xtrim(a), f.mod)
	if len(g) != 1 {
		return nil, ErrNotInvertible // unreachable for irreducible modulus
	}
	ginv, err := f.base.Inv(g[0])
	if err != nil {
		return nil, err
	}
	out := f.fresh()
	for i, c := range s {
		out[i] = f.base.Mul(c, ginv)
	}
	return out, nil
}

// Div returns a/b.
func (f FpExt) Div(a, b []uint64) ([]uint64, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return nil, err
	}
	return f.Mul(a, bi), nil
}

// Characteristic returns p.
func (f FpExt) Characteristic() *big.Int {
	return new(big.Int).SetUint64(f.base.Modulus())
}

// Cardinality returns p^k.
func (f FpExt) Cardinality() *big.Int {
	p := new(big.Int).SetUint64(f.base.Modulus())
	return p.Exp(p, big.NewInt(int64(f.k)), nil)
}

// Elem maps i to the element whose coefficients are the base-p digits of i,
// an injective enumeration of the first min(p^k, 2⁶⁴) elements.
func (f FpExt) Elem(i uint64) []uint64 {
	p := f.base.Modulus()
	e := f.fresh()
	for j := 0; j < f.k && i > 0; j++ {
		e[j] = i % p
		i /= p
	}
	return e
}

func (f FpExt) coef(a []uint64, i int) uint64 {
	if i < len(a) {
		return a[i]
	}
	return 0
}

func (f FpExt) pad(a []uint64) []uint64 {
	out := f.fresh()
	copy(out, a)
	return out
}

var _ Field[[]uint64] = FpExt{}

// --- minimal dense polynomial arithmetic over Fp64 ---
//
// These helpers exist only to implement FpExt (the full polynomial package
// depends on ff, so it cannot be used here). Polynomials are coefficient
// slices, low degree first, with no trailing zeros ("trimmed"); the zero
// polynomial is the empty slice.

func xtrim(a []uint64) []uint64 {
	n := len(a)
	for n > 0 && a[n-1] == 0 {
		n--
	}
	return a[:n]
}

func xadd(f Fp64, a, b []uint64) []uint64 {
	n := max(len(a), len(b))
	c := make([]uint64, n)
	for i := range c {
		var av, bv uint64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		c[i] = f.Add(av, bv)
	}
	return xtrim(c)
}

func xmul(f Fp64, a, b []uint64) []uint64 {
	a, b = xtrim(a), xtrim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	c := make([]uint64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			c[i+j] = f.Add(c[i+j], f.Mul(av, bv))
		}
	}
	return xtrim(c)
}

func xscale(f Fp64, s uint64, a []uint64) []uint64 {
	c := make([]uint64, len(a))
	for i, av := range a {
		c[i] = f.Mul(s, av)
	}
	return xtrim(c)
}

// xdivmod returns quotient and remainder of a by non-zero b.
func xdivmod(f Fp64, a, b []uint64) (q, r []uint64) {
	a, b = xtrim(a), xtrim(b)
	if len(b) == 0 {
		panic("ff: polynomial division by zero")
	}
	r = append([]uint64(nil), a...)
	if len(a) < len(b) {
		return nil, xtrim(r)
	}
	q = make([]uint64, len(a)-len(b)+1)
	lcInv, err := f.Inv(b[len(b)-1])
	if err != nil {
		panic("ff: non-invertible leading coefficient")
	}
	for len(r) >= len(b) {
		d := len(r) - len(b)
		c := f.Mul(r[len(r)-1], lcInv)
		q[d] = c
		for i, bv := range b {
			r[d+i] = f.Sub(r[d+i], f.Mul(c, bv))
		}
		r = xtrim(r)
	}
	return xtrim(q), r
}

// xgcdext returns g = gcd(a, b) and s with s·a ≡ g (mod b).
func xgcdext(f Fp64, a, b []uint64) (g, s []uint64) {
	r0, r1 := append([]uint64(nil), a...), append([]uint64(nil), b...)
	s0, s1 := []uint64{1}, []uint64(nil)
	for len(xtrim(r1)) != 0 {
		q, rem := xdivmod(f, r0, r1)
		r0, r1 = r1, rem
		s0, s1 = s1, xsub(f, s0, xmul(f, q, s1))
	}
	return xtrim(r0), xtrim(s0)
}

func xsub(f Fp64, a, b []uint64) []uint64 {
	nb := make([]uint64, len(b))
	for i, bv := range b {
		nb[i] = f.Neg(bv)
	}
	return xadd(f, a, nb)
}

// xpowmodX computes x^e mod m for the monomial x, by binary exponentiation
// on a big exponent.
func xpowmodX(f Fp64, e *big.Int, m []uint64) []uint64 {
	result := []uint64{1}
	base := []uint64{0, 1} // x
	_, base = xdivmod(f, base, m)
	for i := e.BitLen() - 1; i >= 0; i-- {
		sq := xmul(f, result, result)
		_, result = xdivmod(f, sq, m)
		if e.Bit(i) == 1 {
			pr := xmul(f, result, base)
			_, result = xdivmod(f, pr, m)
		}
	}
	return result
}

// xirreducible implements Rabin's irreducibility test: f of degree k over
// F_p is irreducible iff x^(p^k) ≡ x (mod f) and, for every prime divisor q
// of k, gcd(x^(p^(k/q)) − x, f) = 1.
func xirreducible(f Fp64, m []uint64) bool {
	m = xtrim(m)
	k := len(m) - 1
	if k <= 0 {
		return false
	}
	if k == 1 {
		return true
	}
	p := new(big.Int).SetUint64(f.Modulus())
	// x^(p^k) mod m must equal x.
	e := new(big.Int).Exp(p, big.NewInt(int64(k)), nil)
	xp := xpowmodX(f, e, m)
	if !xeq(xp, []uint64{0, 1}) {
		return false
	}
	for _, q := range primeDivisors(k) {
		e := new(big.Int).Exp(p, big.NewInt(int64(k/q)), nil)
		xq := xpowmodX(f, e, m)
		diff := xsub(f, xq, []uint64{0, 1})
		g, _ := xgcdext(f, diff, m)
		if len(g) != 1 {
			return false
		}
	}
	return true
}

func xeq(a, b []uint64) bool {
	a, b = xtrim(a), xtrim(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func primeDivisors(n int) []int {
	var ps []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			ps = append(ps, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		ps = append(ps, n)
	}
	return ps
}
