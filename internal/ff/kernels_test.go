package ff

import (
	"math/big"
	"testing"
)

// kernelFields is the set of word primes the differential checks sweep:
// the three documented test primes, the NTT prime, a 63-bit prime above
// the lazy-reduction bound (exercising the per-element REDC path), and
// F_2 (the generic fallback inside the kernel methods).
func kernelFields() []Fp64 {
	return []Fp64{
		MustFp64(P62),
		MustFp64(P31),
		MustFp64(P17),
		MustFp64(PNTT62),
		MustFp64(9223372036854775783), // 2⁶³ − 25, ≥ 2⁶² lazy bound
		MustFp64(2),
	}
}

// kvec fills a deterministic pseudo-random vector over f.
func kvec(f Fp64, seed uint64, n int) []uint64 {
	v := make([]uint64, n)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range v {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v[i] = x % f.p
	}
	return v
}

// TestKernelsDifferential cross-checks every Kernels primitive against the
// generic per-element loop on randomized inputs, for every field in the
// sweep and a range of lengths straddling the lazy-reduction chunk.
func TestKernelsDifferential(t *testing.T) {
	for _, f := range kernelFields() {
		k, ok := KernelsOf[uint64](f)
		if !ok {
			t.Fatalf("F_%d: Fp64 must implement Kernels", f.p)
		}
		for _, n := range []int{0, 1, 2, 15, 16, 17, 31, 32, 100, 257} {
			a := kvec(f, uint64(n)+1, n)
			b := kvec(f, uint64(n)+2, n)
			s := kvec(f, uint64(n)+3, 1+n)[n]

			// DotInto vs balanced-tree Dot.
			if got, want := k.DotInto(a, b), Dot[uint64](f, a, b); got != want {
				t.Fatalf("F_%d n=%d: DotInto=%d want %d", f.p, n, got, want)
			}

			// ScaleInto vs per-element Mul.
			dst := make([]uint64, n)
			k.ScaleInto(dst, s, a)
			for i := range a {
				if want := f.Mul(s, a[i]); dst[i] != want {
					t.Fatalf("F_%d n=%d: ScaleInto[%d]=%d want %d", f.p, n, i, dst[i], want)
				}
			}

			// MulAddVec vs Add(Mul).
			acc := append([]uint64(nil), b...)
			k.MulAddVec(acc, s, a)
			for i := range a {
				if want := f.Add(b[i], f.Mul(s, a[i])); acc[i] != want {
					t.Fatalf("F_%d n=%d: MulAddVec[%d]=%d want %d", f.p, n, i, acc[i], want)
				}
			}

			// AddInto vs Add.
			sum := append([]uint64(nil), b...)
			k.AddInto(sum, a)
			for i := range a {
				if want := f.Add(b[i], a[i]); sum[i] != want {
					t.Fatalf("F_%d n=%d: AddInto[%d]=%d want %d", f.p, n, i, sum[i], want)
				}
			}

			// SubInto vs Sub.
			diff := append([]uint64(nil), b...)
			k.SubInto(diff, a)
			for i := range a {
				if want := f.Sub(b[i], a[i]); diff[i] != want {
					t.Fatalf("F_%d n=%d: SubInto[%d]=%d want %d", f.p, n, i, diff[i], want)
				}
			}
		}
	}
}

// TestNTTKernelMatchesGenericButterflies checks the fused Montgomery-domain
// transform against a direct evaluation at the root's powers, for every
// odd-modulus field with enough 2-power roots.
func TestNTTKernelMatchesGenericButterflies(t *testing.T) {
	f := MustFp64(PNTT62)
	ker, ok := any(f).(NTTKernel[uint64])
	if !ok {
		t.Fatal("Fp64 must implement NTTKernel")
	}
	for _, log2n := range []int{0, 1, 3, 6, 9} {
		n := 1 << log2n
		root, ok := f.RootOfUnity(log2n)
		if !ok {
			t.Fatalf("no 2^%d-th root", log2n)
		}
		a := kvec(f, uint64(77+log2n), n)
		got := append([]uint64(nil), a...)
		if !ker.NTTInPlace(got, root, log2n) {
			t.Fatal("NTTInPlace refused an odd modulus")
		}
		// Reference: direct DFT, got[i] must equal Σ_j a[j]·root^{ij}.
		for i := 0; i < n; i++ {
			want := f.Zero()
			wi := f.Pow(root, uint64(i))
			x := f.One()
			for j := 0; j < n; j++ {
				want = f.Add(want, f.Mul(a[j], x))
				x = f.Mul(x, wi)
			}
			if got[i] != want {
				t.Fatalf("log2n=%d: NTT[%d]=%d want %d", log2n, i, got[i], want)
			}
		}
	}
}

// TestKernelsGenericHelpers checks the dispatching helpers: over Fp64 they
// take the fused path, over a Counting wrapper (which hides the kernels)
// the generic loop — both must agree with the naive computation, and the
// counted path must still count.
func TestKernelsGenericHelpers(t *testing.T) {
	f := MustFp64(P31)
	cf := NewCounting[uint64](f)
	if _, ok := KernelsOf[uint64](cf); ok {
		t.Fatal("Counting wrapper must not expose kernels (op counts would drift)")
	}
	a := kvec(f, 5, 33)
	b := kvec(f, 6, 33)
	s := uint64(12345)

	if got, want := DotFused[uint64](f, a, b), DotFused[uint64](cf, a, b); got != want {
		t.Fatalf("DotFused fast=%d generic=%d", got, want)
	}
	if cf.Counts().Mul == 0 {
		t.Fatal("generic DotFused path did not count multiplications")
	}

	d1 := append([]uint64(nil), b...)
	d2 := append([]uint64(nil), b...)
	VecMulAddInto[uint64](f, d1, s, a)
	VecMulAddInto[uint64](cf, d2, s, a)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("VecMulAddInto diverges at %d: %d vs %d", i, d1[i], d2[i])
		}
	}

	VecScaleInto[uint64](f, d1, s, a)
	VecScaleInto[uint64](cf, d2, s, a)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("VecScaleInto diverges at %d", i)
		}
	}

	VecAddInto[uint64](f, d1, a)
	VecAddInto[uint64](cf, d2, a)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("VecAddInto diverges at %d", i)
		}
	}
}

// TestMontgomeryRoundTrip checks toMont/fromMont and the REDC multiply
// against big.Int on deterministic values for the documented primes.
func TestMontgomeryRoundTrip(t *testing.T) {
	for _, f := range kernelFields() {
		if f.pInv == 0 {
			continue // F_2 has no Montgomery form
		}
		P := new(big.Int).SetUint64(f.p)
		vals := kvec(f, 99, 64)
		vals = append(vals, 0, 1, f.p-1)
		for _, a := range vals {
			if got := f.fromMont(f.toMont(a)); got != a {
				t.Fatalf("F_%d: fromMont(toMont(%d)) = %d", f.p, a, got)
			}
			for _, b := range []uint64{0, 1, 2, f.p - 1, vals[0]} {
				want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
				want.Mod(want, P)
				if got := f.Mul(a, b); got != want.Uint64() {
					t.Fatalf("F_%d: Mul(%d,%d) = %d want %v", f.p, a, b, got, want)
				}
			}
		}
	}
}

// FuzzMontgomery fuzzes the Montgomery round trip and REDC multiply against
// the big.Int reference across P62, P31 and P17.
func FuzzMontgomery(fz *testing.F) {
	fz.Add(uint64(3), uint64(5), uint8(0))
	fz.Add(uint64(1)<<61, uint64(1)<<60, uint8(1))
	fz.Add(^uint64(0), ^uint64(0), uint8(2))
	fields := []Fp64{MustFp64(P62), MustFp64(P31), MustFp64(P17)}
	fz.Fuzz(func(t *testing.T, a, b uint64, sel uint8) {
		f := fields[int(sel)%len(fields)]
		a, b = a%f.p, b%f.p
		if got := f.fromMont(f.toMont(a)); got != a {
			t.Fatalf("F_%d: round trip %d -> %d", f.p, a, got)
		}
		P := new(big.Int).SetUint64(f.p)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, P)
		if got := f.Mul(a, b); got != want.Uint64() {
			t.Fatalf("F_%d: Mul(%d,%d) = %d want %v", f.p, a, b, got, want)
		}
		// Pow/Inv ride the same REDC ladder: spot-check a·a⁻¹ = 1.
		if a != 0 {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("F_%d: Inv(%d): %v", f.p, a, err)
			}
			if f.Mul(a, inv) != 1 {
				t.Fatalf("F_%d: %d·Inv = %d", f.p, a, f.Mul(a, inv))
			}
		}
	})
}
