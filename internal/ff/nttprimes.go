package ff

import (
	"fmt"
	"math/big"
)

// NTT-friendly prime generation for the RNS/CRT multi-modulus engine
// (the lattigo GenerateNTTPrimes idiom): word-sized primes p ≡ 1 mod 2^a,
// so F_p contains primitive 2^k-th roots of unity for every k ≤ a and the
// Hankel-preconditioner NTT fast path (and every poly NTT product) is
// available in each residue field. The generator walks candidates
// descending from 2^bits in steps of 2^a, so successive primes are
// distinct, deterministic, and as large as possible — maximizing the bits
// each residue contributes to the CRT modulus.

// DefaultNTTPrimeBits is the default residue prime size: primes just below
// 2⁶², the largest size the Fp64 lazy-reduction kernels accept.
const DefaultNTTPrimeBits = 62

// DefaultNTTLog2n is the default guaranteed two-adicity of generated
// primes: 2^20 | p−1 admits NTT sizes up to 2^20 — Hankel applies for
// systems up to n ≈ 2^18, far beyond any dimension this code runs.
const DefaultNTTLog2n = 20

// NTTPrimeSeq generates distinct NTT-friendly primes on demand, descending
// from 2^bits. The sequence is deterministic: two sequences with the same
// parameters yield the same primes in the same order. It is not safe for
// concurrent use; guard Next with a mutex when workers share one sequence.
type NTTPrimeSeq struct {
	bits  int
	log2n int
	next  *big.Int // next candidate, ≡ 1 mod 2^log2n
	step  *big.Int // 2^log2n
	floor *big.Int // smallest acceptable candidate (2^(bits−1))
}

// NewNTTPrimeSeq returns a generator of primes p < 2^bits with
// p ≡ 1 mod 2^log2n. bits must be in [20, 62] (Fp64 word primes) and
// log2n in [1, bits−2]; zero values select the defaults.
func NewNTTPrimeSeq(bits, log2n int) (*NTTPrimeSeq, error) {
	if bits == 0 {
		bits = DefaultNTTPrimeBits
	}
	if log2n == 0 {
		log2n = DefaultNTTLog2n
	}
	if bits < 20 || bits > 62 {
		return nil, fmt.Errorf("ff: NTT prime size %d bits out of range [20, 62]", bits)
	}
	if log2n < 1 || log2n > bits-2 {
		return nil, fmt.Errorf("ff: NTT two-adicity 2^%d out of range [2^1, 2^%d]", log2n, bits-2)
	}
	step := new(big.Int).Lsh(big.NewInt(1), uint(log2n))
	// Largest v < 2^bits with v ≡ 1 mod 2^log2n: 2^bits − 2^log2n + 1.
	first := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	first.Sub(first, step)
	first.Add(first, big.NewInt(1))
	return &NTTPrimeSeq{
		bits:  bits,
		log2n: log2n,
		next:  first,
		step:  step,
		floor: new(big.Int).Lsh(big.NewInt(1), uint(bits-1)),
	}, nil
}

// Log2n returns the guaranteed two-adicity exponent: 2^Log2n divides p−1
// for every generated prime.
func (g *NTTPrimeSeq) Log2n() int { return g.log2n }

// Next returns the next prime in the sequence, or an error once the
// candidate walk falls below 2^(bits−1) — which cannot happen for any
// realistic residue count (there are billions of 62-bit NTT primes).
func (g *NTTPrimeSeq) Next() (uint64, error) {
	for g.next.Cmp(g.floor) > 0 {
		cand := g.next.Uint64()
		g.next.Sub(g.next, g.step)
		if new(big.Int).SetUint64(cand).ProbablyPrime(32) {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("ff: exhausted %d-bit primes ≡ 1 mod 2^%d", g.bits, g.log2n)
}

// GenerateNTTPrimes returns the first count primes of the (bits, log2n)
// sequence — distinct word-sized NTT-friendly primes in descending order.
func GenerateNTTPrimes(bits, log2n, count int) ([]uint64, error) {
	if count <= 0 {
		return nil, fmt.Errorf("ff: GenerateNTTPrimes wants a positive count, got %d", count)
	}
	g, err := NewNTTPrimeSeq(bits, log2n)
	if err != nil {
		return nil, err
	}
	primes := make([]uint64, 0, count)
	for len(primes) < count {
		p, err := g.Next()
		if err != nil {
			return nil, err
		}
		primes = append(primes, p)
	}
	return primes, nil
}
