package ff

// Vector helpers over an abstract field. These are the shared primitives of
// the matrix, structured and Wiedemann packages; Dot uses a balanced
// reduction so that circuits traced through these helpers have logarithmic
// depth (the Figure 3 device of the paper).

// VecZero returns the zero vector of length n.
func VecZero[E any](f Field[E], n int) []E {
	v := make([]E, n)
	for i := range v {
		v[i] = f.Zero()
	}
	return v
}

// VecCopy returns a copy of v (elements are immutable, so a shallow copy).
func VecCopy[E any](v []E) []E {
	return append([]E(nil), v...)
}

// VecAdd returns a + b elementwise. The slices must have equal length.
func VecAdd[E any](f Field[E], a, b []E) []E {
	mustSameLen(len(a), len(b))
	c := make([]E, len(a))
	for i := range c {
		c[i] = f.Add(a[i], b[i])
	}
	return c
}

// VecSub returns a − b elementwise.
func VecSub[E any](f Field[E], a, b []E) []E {
	mustSameLen(len(a), len(b))
	c := make([]E, len(a))
	for i := range c {
		c[i] = f.Sub(a[i], b[i])
	}
	return c
}

// VecNeg returns −a elementwise.
func VecNeg[E any](f Field[E], a []E) []E {
	c := make([]E, len(a))
	for i := range c {
		c[i] = f.Neg(a[i])
	}
	return c
}

// VecScale returns s·a elementwise.
func VecScale[E any](f Field[E], s E, a []E) []E {
	c := make([]E, len(a))
	for i := range c {
		c[i] = f.Mul(s, a[i])
	}
	return c
}

// Dot returns the inner product ⟨a, b⟩ using a balanced summation tree so
// that the traced circuit has depth O(log n) rather than O(n).
func Dot[E any](f Field[E], a, b []E) E {
	mustSameLen(len(a), len(b))
	if len(a) == 0 {
		return f.Zero()
	}
	terms := make([]E, len(a))
	for i := range a {
		terms[i] = f.Mul(a[i], b[i])
	}
	return SumTree(f, terms)
}

// SumTree returns the sum of terms via a balanced binary tree: depth
// ⌈log₂ n⌉ additions instead of n−1 sequential ones. This is the
// accumulation-tree balancing of the paper's Figure 3.
func SumTree[E any](f Field[E], terms []E) E {
	switch len(terms) {
	case 0:
		return f.Zero()
	case 1:
		return terms[0]
	}
	// Reduce pairwise, halving each round.
	cur := VecCopy(terms)
	for len(cur) > 1 {
		next := cur[:(len(cur)+1)/2]
		for i := 0; i+1 < len(cur); i += 2 {
			next[i/2] = f.Add(cur[i], cur[i+1])
		}
		if len(cur)%2 == 1 {
			next[len(next)-1] = cur[len(cur)-1]
		}
		cur = next
	}
	return cur[0]
}

// SumVecs returns the elementwise sum of the given vectors with a balanced
// binary tree per coordinate set (depth ⌈log₂ k⌉ vector additions), so that
// traced circuits accumulating Krylov terms stay at logarithmic depth.
func SumVecs[E any](f Field[E], vs [][]E) []E {
	if len(vs) == 0 {
		panic("ff: SumVecs of nothing")
	}
	cur := make([][]E, len(vs))
	copy(cur, vs)
	for len(cur) > 1 {
		next := cur[:(len(cur)+1)/2]
		for i := 0; i+1 < len(cur); i += 2 {
			next[i/2] = VecAdd(f, cur[i], cur[i+1])
		}
		if len(cur)%2 == 1 {
			next[len(next)-1] = cur[len(cur)-1]
		}
		cur = next
	}
	return cur[0]
}

// VecEqual reports whether a and b are elementwise equal.
func VecEqual[E any](f Field[E], a, b []E) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// VecIsZero reports whether every entry of a is zero.
func VecIsZero[E any](f Field[E], a []E) bool {
	for i := range a {
		if !f.IsZero(a[i]) {
			return false
		}
	}
	return true
}

// VecFromInt64 maps an integer slice into the field.
func VecFromInt64[E any](f Field[E], vs []int64) []E {
	out := make([]E, len(vs))
	for i, v := range vs {
		out[i] = f.FromInt64(v)
	}
	return out
}

// VecString formats a vector for diagnostics.
func VecString[E any](f Field[E], a []E) string {
	s := "["
	for i, v := range a {
		if i > 0 {
			s += " "
		}
		s += f.String(v)
	}
	return s + "]"
}

func mustSameLen(a, b int) {
	if a != b {
		panic("ff: vector length mismatch")
	}
}
